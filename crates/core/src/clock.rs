//! Closed-loop timing/frequency recovery for the sniffer's clock domain.
//!
//! The sniffer's oscillator is not the gNB's (the paper resamples TwinRX
//! streams so "the FFT bins fit onto the subcarriers", §4). This module is
//! the receive-side half of that reality: per-slot residual timing and
//! frequency errors — estimated from SSB/DMRS correlation by the observer
//! — feed a second-order PI loop (a digital PLL) that commands fractional
//! resampler corrections, integer sample slips, and a CFO correction back
//! to the front end.
//!
//! Lock state forms its own ladder, `Locked → Pulling → Unlocked`,
//! composed with (not merged into) the sync-health machine: a slot that
//! decodes nothing because the clock is being pulled in must not be
//! misread as a cell outage, so [`crate::scope::NrScope`] suppresses
//! unhealthy-slot accounting while the loop is out of lock — bounded by
//! [`ClockRecoveryConfig::max_reacquire_slots`] so a clock that never
//! relocks cannot mask a real outage forever.

use serde::{Deserialize, Serialize};

/// Lock ladder of the timing-recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ClockLock {
    /// Tracking: fine measurements land inside the lock window.
    Locked,
    /// Acquiring or re-acquiring: measurements arrive (often coarse/SSB)
    /// but the residual is still being slewed toward the lock window.
    #[default]
    Pulling,
    /// No usable clock measurement for longer than the unlock horizon.
    Unlocked,
}

impl ClockLock {
    /// Rung index for the `clock_lock_state` gauge (0 = Locked).
    pub fn index(self) -> u64 {
        match self {
            ClockLock::Locked => 0,
            ClockLock::Pulling => 1,
            ClockLock::Unlocked => 2,
        }
    }
}

/// Timing-recovery loop knobs (`clock.*` in the config surface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ClockRecoveryConfig {
    /// Proportional gain of the PI loop (per measurement).
    pub kp: f64,
    /// Integral gain: how fast the frequency estimate follows the
    /// residual. Sets pull-in speed vs. measurement-noise amplification.
    pub ki: f64,
    /// A measurement with |residual| at or below this (µs) counts toward
    /// lock.
    pub lock_window_us: f64,
    /// Consecutive in-window measurements required to (re-)enter
    /// `Locked`.
    pub lock_after_meas: u32,
    /// Slots without an in-window measurement before `Locked` degrades to
    /// `Pulling` (and a lock loss is counted).
    pub pulling_after_slots: u64,
    /// Slots without an in-window measurement before the loop declares
    /// `Unlocked`.
    pub unlock_after_slots: u64,
    /// Escape hatch for the sync composition: once out of `Locked` for
    /// this many slots, unhealthy-slot accounting resumes even though the
    /// clock is still reacquiring — a clock that never relocks must not
    /// mask a real outage. This is also the documented bound on
    /// reacquisition after a step: the loop either relocks within this
    /// many slots or the sync machine takes over.
    pub max_reacquire_slots: u64,
    /// Sample rate (Hz) the integer-slip accounting quantises against
    /// (30.72 MHz for the 20 MHz µ=1 cells).
    pub sample_rate_hz: f64,
}

impl Default for ClockRecoveryConfig {
    fn default() -> Self {
        ClockRecoveryConfig {
            kp: 0.3,
            ki: 0.05,
            lock_window_us: 0.5,
            lock_after_meas: 8,
            // SSB lands every 40 slots on the paper's cells (20 ms); give
            // two periods before degrading, five before unlock.
            pulling_after_slots: 80,
            unlock_after_slots: 200,
            // ≈ 0.5 s at µ=1: generous for a 2 µs step (measured
            // reacquisition is tens of slots), tight enough that a dead
            // clock hands control back to the sync machine quickly.
            max_reacquire_slots: 1000,
            sample_rate_hz: 30.72e6,
        }
    }
}

/// One slot's clock evidence from the observer: what the receiver's
/// correlators measured *after* the commanded correction was applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClockObservable {
    /// Residual timing error (µs) from DMRS/SSB correlation, if this
    /// slot carried something to correlate against and the residual fell
    /// inside the estimator's range.
    pub timing_us: Option<f64>,
    /// Residual carrier-frequency error (Hz), same availability rules.
    pub cfo_hz: Option<f64>,
    /// The measurement came from an SSB (coarse, wide pull-in range)
    /// rather than per-slot DMRS (fine).
    pub coarse: bool,
    /// The front end reported an overrun gap of this many µs at this
    /// slot (0 = clean). Fed forward: the USRP knows how much it lost.
    pub gap_us: f64,
}

/// Everything the loop must carry across checkpoint/restart (serialised
/// inside the session snapshot and journal micro-state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ClockRecoveryState {
    /// Lock rung.
    pub lock: ClockLock,
    /// Estimated clock drift in µs of timing per slot (≡ ppm × slot
    /// seconds): the integral term of the PI loop.
    pub freq_hat_us_per_slot: f64,
    /// Total commanded timing correction (µs).
    pub correction_us: f64,
    /// Total commanded CFO correction (Hz).
    pub correction_cfo_hz: f64,
    /// Consecutive in-window measurements.
    pub good_streak: u32,
    /// Slots since the last in-window measurement.
    pub slots_since_good: u64,
    /// Slots spent outside `Locked` in the current excursion (0 while
    /// locked).
    pub reacquire_slots: u64,
    /// Lifetime integer sample slips commanded.
    pub slips: u64,
    /// Lifetime lock losses (departures from `Locked`).
    pub lock_losses: u64,
    /// Lifetime step events absorbed (feed-forward gaps + coarse snaps
    /// while previously locked).
    pub steps: u64,
    /// Fractional sample remainder not yet big enough to slip (samples).
    pub slip_frac: f64,
}

/// Loop events of one slot, for metrics/notes at the integration layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClockEvents {
    /// The loop left `Locked` this slot.
    pub lost_lock: bool,
    /// The loop (re-)entered `Locked` this slot; the value is the length
    /// of the excursion in slots (0 for the very first acquisition).
    pub locked: Option<u64>,
    /// Integer sample slips commanded this slot (absolute count).
    pub slipped: u64,
    /// A step-like discontinuity was absorbed this slot (gap feed-forward
    /// or an out-of-fine-range coarse snap).
    pub step: bool,
}

/// The closed loop: a second-order digital PLL over observer residuals.
#[derive(Debug, Clone)]
pub struct ClockRecovery {
    cfg: ClockRecoveryConfig,
    st: ClockRecoveryState,
}

impl ClockRecovery {
    /// A fresh loop in `Pulling` (acquisition) with zero estimates.
    pub fn new(cfg: ClockRecoveryConfig) -> ClockRecovery {
        ClockRecovery {
            cfg,
            st: ClockRecoveryState::default(),
        }
    }

    /// Restore a loop from checkpointed state.
    pub fn from_state(cfg: ClockRecoveryConfig, st: ClockRecoveryState) -> ClockRecovery {
        ClockRecovery { cfg, st }
    }

    /// The persistable loop state.
    pub fn state(&self) -> ClockRecoveryState {
        self.st
    }

    /// Current lock rung.
    pub fn lock(&self) -> ClockLock {
        self.st.lock
    }

    /// Signed drift estimate in parts-per-billion, derived from the
    /// loop's integral term (`us_per_slot / slot_s` µs/s ≡ ppm).
    pub fn drift_ppb(&self, slot_s: f64) -> i64 {
        (self.st.freq_hat_us_per_slot / slot_s * 1000.0).round() as i64
    }

    /// Total commanded timing correction (µs) — the front end subtracts
    /// this from the raw air timing.
    pub fn correction_us(&self) -> f64 {
        self.st.correction_us
    }

    /// Total commanded CFO correction (Hz).
    pub fn correction_cfo_hz(&self) -> f64 {
        self.st.correction_cfo_hz
    }

    /// Whether sync-health accounting should treat decode silence as
    /// potentially clock-induced: true while the loop is out of lock but
    /// still inside its bounded reacquisition window.
    pub fn masks_sync(&self) -> bool {
        self.st.lock != ClockLock::Locked && self.st.reacquire_slots < self.cfg.max_reacquire_slots
    }

    /// Advance the loop by one slot of evidence. Returns the slot's
    /// events for the metrics layer.
    pub fn on_slot(&mut self, obs: &ClockObservable) -> ClockEvents {
        let mut ev = ClockEvents::default();
        let was_locked = self.st.lock == ClockLock::Locked;
        let corr_before = self.st.correction_us;

        // Overrun feed-forward: the USRP reports how many samples it
        // dropped, so the whole gap is corrected immediately — a timing
        // step the loop never has to hunt for.
        if obs.gap_us != 0.0 {
            self.st.correction_us += obs.gap_us;
            self.st.steps += 1;
            ev.step = true;
        }

        let mut good = false;
        if let Some(y) = obs.timing_us {
            if obs.coarse && y.abs() > 4.0 * self.cfg.lock_window_us {
                // Coarse SSB snap, far outside the fine window: take the
                // whole residual at once (PSS correlation is unambiguous
                // over its range) instead of slewing through it. While
                // locked this is a step discontinuity worth counting.
                self.st.correction_us += y;
                if was_locked {
                    self.st.steps += 1;
                    ev.step = true;
                }
            } else {
                // PI update (second-order DPLL): the integral term learns
                // the drift rate, the proportional term closes the
                // remaining phase error.
                self.st.freq_hat_us_per_slot += self.cfg.ki * y;
                self.st.correction_us += self.cfg.kp * y;
            }
            good = y.abs() <= self.cfg.lock_window_us;
        }
        if let Some(f) = obs.cfo_hz {
            // First-order on frequency: CFO needs no integrator of its
            // own (the timing integral already models the rate).
            self.st.correction_cfo_hz += 0.5 * f;
        }
        // Between measurements the integral term flywheels the
        // correction forward at the learned drift rate.
        self.st.correction_us += self.st.freq_hat_us_per_slot;

        // Integer-slip accounting: whole-sample moves of the commanded
        // correction are executed as resampler slips, the remainder as
        // fractional phase.
        let sample_us = 1e6 / self.cfg.sample_rate_hz;
        self.st.slip_frac += (self.st.correction_us - corr_before) / sample_us;
        let whole = self.st.slip_frac.trunc();
        if whole != 0.0 {
            self.st.slip_frac -= whole;
            let n = whole.abs() as u64;
            self.st.slips += n;
            ev.slipped = n;
        }

        // Lock ladder. Slots without any measurement age the horizon but
        // do not break the streak — measurement cadence is set by the
        // cell's traffic and SSB period, not by the loop.
        if good {
            self.st.good_streak += 1;
            self.st.slots_since_good = 0;
        } else {
            if obs.timing_us.is_some() {
                self.st.good_streak = 0;
            }
            self.st.slots_since_good += 1;
        }
        // Entering `Locked` takes a streak ending in a *fresh* good
        // measurement; staying `Locked` rides the hysteresis horizon.
        let next = if (good && self.st.good_streak >= self.cfg.lock_after_meas)
            || (was_locked && self.st.slots_since_good < self.cfg.pulling_after_slots)
        {
            ClockLock::Locked
        } else if self.st.slots_since_good >= self.cfg.unlock_after_slots {
            // A full starvation horizon also voids the accumulated
            // streak: relocking needs fresh consecutive evidence.
            self.st.good_streak = 0;
            ClockLock::Unlocked
        } else {
            ClockLock::Pulling
        };
        if was_locked && next != ClockLock::Locked {
            self.st.lock_losses += 1;
            ev.lost_lock = true;
        }
        if next == ClockLock::Locked {
            if !was_locked {
                ev.locked = Some(self.st.reacquire_slots);
            }
            self.st.reacquire_slots = 0;
        } else {
            self.st.reacquire_slots += 1;
        }
        self.st.lock = next;
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT_S: f64 = 5e-4;

    /// Simulate a truth clock with constant drift and feed the loop its
    /// own residuals (truth − correction), the way the observer does.
    fn run_loop(
        rec: &mut ClockRecovery,
        drift_us_per_slot: f64,
        start_us: f64,
        slots: u64,
        meas_every: u64,
    ) -> Vec<f64> {
        let mut residuals = Vec::new();
        for s in 0..slots {
            let truth = start_us + drift_us_per_slot * s as f64;
            let resid = truth - rec.correction_us();
            let obs = if s % meas_every == 0 {
                ClockObservable {
                    timing_us: Some(resid),
                    cfo_hz: Some(0.0),
                    coarse: resid.abs() > 1.2,
                    gap_us: 0.0,
                }
            } else {
                ClockObservable::default()
            };
            rec.on_slot(&obs);
            residuals.push(resid);
        }
        residuals
    }

    #[test]
    fn acquires_and_tracks_constant_drift() {
        // 20 ppm at µ=1: 10 ns of timing per slot... in µs/slot: 0.01.
        let mut rec = ClockRecovery::new(ClockRecoveryConfig::default());
        let resid = run_loop(&mut rec, 0.01, 0.0, 2000, 1);
        assert_eq!(rec.lock(), ClockLock::Locked);
        // Steady-state residual well inside the lock window.
        let tail: f64 =
            resid[1500..].iter().map(|r| r.abs()).sum::<f64>() / (resid.len() - 1500) as f64;
        assert!(tail < 0.1, "steady-state residual {tail} µs");
        // The integral term learned the drift: 0.01 µs/slot = 20 ppm.
        let ppb = rec.drift_ppb(SLOT_S);
        assert!((ppb - 20_000).abs() < 2_000, "drift estimate {ppb} ppb");
    }

    #[test]
    fn sparse_measurements_still_lock() {
        let mut rec = ClockRecovery::new(ClockRecoveryConfig::default());
        run_loop(&mut rec, 0.005, 0.0, 4000, 10);
        assert_eq!(rec.lock(), ClockLock::Locked);
    }

    #[test]
    fn step_reacquires_within_bound() {
        // Faithful measurement availability: fine DMRS residuals only
        // inside ±CP/2 ≈ ±1.17 µs, coarse SSB snaps only every 40 slots.
        // A 2 µs step therefore blinds the fine estimator until the next
        // SSB pulls the loop back inside the fine range.
        let cfg = ClockRecoveryConfig::default();
        let mut rec = ClockRecovery::new(cfg);
        run_loop(&mut rec, 0.01, 0.0, 2000, 1);
        assert_eq!(rec.lock(), ClockLock::Locked);
        let base = rec.correction_us() + 0.01;
        let mut settled = None;
        for s in 0..cfg.max_reacquire_slots {
            let truth = base + 2.0 + 0.01 * s as f64; // step + drift
            let resid = truth - rec.correction_us();
            let obs = if s % 40 == 0 {
                ClockObservable {
                    timing_us: Some(resid),
                    cfo_hz: Some(0.0),
                    coarse: true,
                    gap_us: 0.0,
                }
            } else if resid.abs() <= 1.17 {
                ClockObservable {
                    timing_us: Some(resid),
                    cfo_hz: Some(0.0),
                    coarse: false,
                    gap_us: 0.0,
                }
            } else {
                ClockObservable::default()
            };
            let ev = rec.on_slot(&obs);
            if ev.step {
                assert!(obs.coarse, "the step registers via a coarse snap");
            }
            if settled.is_none() && resid.abs() <= cfg.lock_window_us && s > 0 {
                settled = Some(s);
            }
            if settled.is_some() && rec.lock() == ClockLock::Locked {
                break;
            }
        }
        // The documented bound: one SSB period to see the step plus a few
        // slots of PI settling — far inside `max_reacquire_slots`.
        let slots = settled.expect("residual re-entered the lock window");
        assert!(slots <= 60, "settled in {slots} slots");
        assert_eq!(rec.lock(), ClockLock::Locked);
        assert!(rec.state().steps >= 1, "step was counted");
    }

    #[test]
    fn gap_feed_forward_is_transparent() {
        let mut rec = ClockRecovery::new(ClockRecoveryConfig::default());
        run_loop(&mut rec, 0.0, 0.0, 500, 1);
        assert_eq!(rec.lock(), ClockLock::Locked);
        let before = rec.correction_us();
        let ev = rec.on_slot(&ClockObservable {
            timing_us: None,
            cfo_hz: None,
            coarse: false,
            gap_us: 30.0,
        });
        assert!(ev.step);
        assert!((rec.correction_us() - before - 30.0).abs() < 1e-9);
        // Still locked: the gap was corrected, not hunted for.
        assert_eq!(rec.lock(), ClockLock::Locked);
    }

    #[test]
    fn starvation_unlocks_and_masks_sync_boundedly() {
        let cfg = ClockRecoveryConfig::default();
        let mut rec = ClockRecovery::new(cfg);
        run_loop(&mut rec, 0.0, 0.0, 500, 1);
        assert_eq!(rec.lock(), ClockLock::Locked);
        for s in 0..cfg.unlock_after_slots + 1 {
            rec.on_slot(&ClockObservable::default());
            if s + 1 == cfg.pulling_after_slots {
                assert_eq!(rec.lock(), ClockLock::Pulling, "degrades first");
            }
        }
        assert_eq!(rec.lock(), ClockLock::Unlocked);
        assert!(rec.masks_sync(), "young excursion masks sync accounting");
        for _ in 0..cfg.max_reacquire_slots {
            rec.on_slot(&ClockObservable::default());
        }
        assert!(!rec.masks_sync(), "the mask is bounded");
    }

    #[test]
    fn slips_accumulate_with_commanded_correction() {
        let mut rec = ClockRecovery::new(ClockRecoveryConfig::default());
        // 1 µs of drift per slot ≈ 30.72 samples per slot.
        run_loop(&mut rec, 1.0, 0.0, 200, 1);
        let st = rec.state();
        assert!(st.slips > 1000, "slips {}", st.slips);
        assert!(st.slip_frac.abs() < 1.0);
    }

    #[test]
    fn state_roundtrips_through_serde() {
        let mut rec = ClockRecovery::new(ClockRecoveryConfig::default());
        run_loop(&mut rec, 0.01, 0.3, 700, 3);
        let st = rec.state();
        let json = serde_json::to_string(&st).expect("serialises");
        let back: ClockRecoveryState = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, st);
        // A loop rebuilt from state continues identically.
        let mut a = ClockRecovery::from_state(ClockRecoveryConfig::default(), st);
        let mut b = ClockRecovery::from_state(ClockRecoveryConfig::default(), st);
        let obs = ClockObservable {
            timing_us: Some(0.2),
            cfo_hz: Some(40.0),
            coarse: false,
            gap_us: 0.0,
        };
        assert_eq!(a.on_slot(&obs), b.on_slot(&obs));
        assert_eq!(a.state(), b.state());
    }
}
