//! Sliding-window per-UE bit-rate estimation (paper §3.2.2: "We record the
//! TBS for every UE in each TTI, maintaining a sliding window to calculate
//! the bit rate for each UE").
//!
//! Two accuracy properties the paper's headline claims (<0.1% throughput
//! error, Fig 10–11) depend on, both regression-tested here:
//!
//! * the window spans exactly `window_slots` slots — a sample that is
//!   `window_slots` old has left the window (off-by-one spans bias every
//!   steady-state rate low by `1/window_slots`);
//! * during cold start the rate divides by the *observed* span, not the
//!   full window, so a newly-arrived UE's rate is unbiased from its first
//!   few slots (the Fig 14a ramp) instead of climbing toward truth over a
//!   full window length.

use nr_phy::types::Rnti;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Sliding-window rate estimator for one UE.
#[derive(Debug, Clone, Default)]
pub struct RateWindow {
    /// (slot, bits) samples inside the window.
    samples: VecDeque<(u64, u64)>,
    /// Running sum of bits in the window.
    sum_bits: u64,
}

impl RateWindow {
    /// Record `bits` delivered in `slot`, evicting samples that have left
    /// the `window_slots`-wide window. After a push at slot `s` the window
    /// covers `(s - window_slots, s]` — exactly `window_slots` slots.
    pub fn push(&mut self, slot: u64, bits: u64, window_slots: u64) {
        self.samples.push_back((slot, bits));
        self.sum_bits += bits;
        while let Some(&(s, b)) = self.samples.front() {
            // A sample exactly `window_slots` old sits on the boundary and
            // is evicted: keeping it makes the retained span
            // `window_slots + 1` wide while the rate divides by (at most)
            // `window_slots`, biasing every steady-state rate low.
            if slot >= window_slots && s <= slot - window_slots {
                self.samples.pop_front();
                self.sum_bits -= b;
            } else {
                break;
            }
        }
    }

    /// Bits currently inside the window (caller converts to a rate with
    /// the slot duration).
    pub fn bits(&self) -> u64 {
        self.sum_bits
    }

    /// Slots actually covered by the retained samples, clamped to
    /// `[1, window_slots]`. Before the window has filled (cold start) this
    /// is the observed span, so the rate is unbiased from the first slots.
    pub fn effective_span(&self, window_slots: u64) -> u64 {
        match (self.samples.front(), self.samples.back()) {
            (Some(&(first, _)), Some(&(last, _))) => {
                (last - first + 1).clamp(1, window_slots.max(1))
            }
            _ => 1,
        }
    }

    /// Rate in bits/s over the effective observed span (≤ `window_slots`)
    /// given the slot duration.
    pub fn rate_bps(&self, window_slots: u64, slot_s: f64) -> f64 {
        self.sum_bits as f64 / (self.effective_span(window_slots) as f64 * slot_s)
    }
}

/// Default history retention: 60 s of µ=1 slots. Bounds per-UE memory for
/// the ROADMAP's long-running/many-UE scenarios while keeping enough of a
/// tail for offline evaluation windows.
pub const DEFAULT_HISTORY_RETENTION_SLOTS: u64 = 120_000;

/// Per-UE rate bookkeeping plus cell-total accounting.
///
/// The per-UE history ring is bounded by a retention horizon (default
/// [`DEFAULT_HISTORY_RETENTION_SLOTS`]): samples older than
/// `newest_slot - retention` are pruned, and a departed UE's history is
/// released entirely once it ages out — the estimator's memory is
/// O(active UEs × retention), not O(process lifetime).
#[derive(Debug)]
pub struct ThroughputEstimator {
    windows: HashMap<Rnti, RateWindow>,
    /// Per-(UE, slot) delivered bits, for time-series export (Fig 14a).
    /// Front-pruned to the retention horizon.
    history: HashMap<Rnti, VecDeque<(u64, u64)>>,
    /// History retention horizon in slots.
    retention_slots: u64,
    /// Newest slot seen by any `record` (drives pruning of idle UEs).
    newest_slot: u64,
}

impl Default for ThroughputEstimator {
    fn default() -> Self {
        ThroughputEstimator::new()
    }
}

impl ThroughputEstimator {
    /// Fresh estimator with the default history retention.
    pub fn new() -> ThroughputEstimator {
        ThroughputEstimator::with_retention(DEFAULT_HISTORY_RETENTION_SLOTS)
    }

    /// Fresh estimator retaining `retention_slots` of per-UE history.
    pub fn with_retention(retention_slots: u64) -> ThroughputEstimator {
        ThroughputEstimator {
            windows: HashMap::new(),
            history: HashMap::new(),
            retention_slots: retention_slots.max(1),
            newest_slot: 0,
        }
    }

    /// Record a decoded grant's TBS.
    pub fn record(&mut self, rnti: Rnti, slot: u64, tbs_bits: u32, window_slots: u64) {
        self.newest_slot = self.newest_slot.max(slot);
        self.windows
            .entry(rnti)
            .or_default()
            .push(slot, tbs_bits as u64, window_slots);
        let h = self.history.entry(rnti).or_default();
        h.push_back((slot, tbs_bits as u64));
        let horizon = slot.saturating_sub(self.retention_slots);
        while h.front().is_some_and(|&(s, _)| s < horizon) {
            h.pop_front();
        }
    }

    /// Prune every UE's history to the retention horizon at `current_slot`
    /// and release departed UEs whose history has fully aged out. Called
    /// periodically by the session driver; `record` already prunes the
    /// recording UE, so this exists to stop *departed* UEs (which never
    /// record again) from holding history forever.
    pub fn prune(&mut self, current_slot: u64) {
        self.newest_slot = self.newest_slot.max(current_slot);
        let horizon = current_slot.saturating_sub(self.retention_slots);
        self.history.retain(|rnti, h| {
            while h.front().is_some_and(|&(s, _)| s < horizon) {
                h.pop_front();
            }
            // Keep live UEs (they may simply be idle); drop departed ones
            // once nothing of their history remains.
            !h.is_empty() || self.windows.contains_key(rnti)
        });
    }

    /// Current estimated rate for a UE.
    pub fn rate_bps(&self, rnti: Rnti, window_slots: u64, slot_s: f64) -> f64 {
        self.windows
            .get(&rnti)
            .map(|w| w.rate_bps(window_slots, slot_s))
            .unwrap_or(0.0)
    }

    /// Total bits recorded for a UE in a slot range (for offline
    /// comparison against ground truth). Correct for the retained range;
    /// slots older than the retention horizon have been pruned and count
    /// as zero.
    pub fn bits_in(&self, rnti: Rnti, slots: std::ops::Range<u64>) -> u64 {
        self.history
            .get(&rnti)
            .map(|h| {
                h.iter()
                    .filter(|(s, _)| slots.contains(s))
                    .map(|(_, b)| *b)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// UEs with any retained traffic.
    pub fn rntis(&self) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self.history.keys().copied().collect();
        v.sort();
        v
    }

    /// Retained history samples for a UE (memory accounting / tests).
    pub fn history_len(&self, rnti: Rnti) -> usize {
        self.history.get(&rnti).map(|h| h.len()).unwrap_or(0)
    }

    /// Drop a departed UE's live window. Recent history is kept for
    /// evaluation but stops being retained once it ages past the horizon
    /// (see [`ThroughputEstimator::prune`]).
    pub fn forget(&mut self, rnti: Rnti) {
        self.windows.remove(&rnti);
    }

    /// Freeze the estimator into a serialisable, deterministically-ordered
    /// image (maps become RNTI-sorted vectors).
    pub fn state(&self) -> ThroughputState {
        let mut windows: Vec<(Rnti, Vec<(u64, u64)>)> = self
            .windows
            .iter()
            .map(|(r, w)| (*r, w.samples.iter().copied().collect()))
            .collect();
        windows.sort_by_key(|(r, _)| *r);
        let mut history: Vec<(Rnti, Vec<(u64, u64)>)> = self
            .history
            .iter()
            .map(|(r, h)| (*r, h.iter().copied().collect()))
            .collect();
        history.sort_by_key(|(r, _)| *r);
        ThroughputState {
            windows,
            history,
            retention_slots: self.retention_slots,
            newest_slot: self.newest_slot,
        }
    }

    /// Rebuild an estimator from a frozen image. Window sums are recomputed
    /// from the retained samples (the live eviction already bounded them to
    /// the window span, so replaying with an unbounded window is exact).
    pub fn from_state(state: &ThroughputState) -> ThroughputEstimator {
        let mut e = ThroughputEstimator::with_retention(state.retention_slots);
        e.newest_slot = state.newest_slot;
        for (rnti, samples) in &state.windows {
            let w = e.windows.entry(*rnti).or_default();
            for &(slot, bits) in samples {
                w.push(slot, bits, u64::MAX);
            }
        }
        for (rnti, samples) in &state.history {
            e.history.insert(*rnti, samples.iter().copied().collect());
        }
        e
    }
}

/// Serialisable image of a [`ThroughputEstimator`] for checkpointing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThroughputState {
    /// Live rate windows: `(rnti, (slot, bits) samples)`, RNTI-sorted.
    pub windows: Vec<(Rnti, Vec<(u64, u64)>)>,
    /// Per-UE delivered-bits history, RNTI-sorted.
    pub history: Vec<(Rnti, Vec<(u64, u64)>)>,
    /// History retention horizon, slots.
    pub retention_slots: u64,
    /// Newest slot seen by any `record`.
    pub newest_slot: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_old_samples() {
        let mut w = RateWindow::default();
        w.push(0, 100, 10);
        w.push(5, 100, 10);
        assert_eq!(w.bits(), 200);
        w.push(16, 100, 10);
        // Window now covers (6, 16]: slots 0 and 5 are both out.
        assert_eq!(w.bits(), 100);
    }

    #[test]
    fn boundary_sample_is_evicted_not_kept() {
        // Regression (PR 2): a sample exactly `window_slots` old must be
        // out of the window, else the retained span is window+1 slots wide
        // and every steady-state rate reads low.
        let mut w = RateWindow::default();
        w.push(0, 100, 10);
        w.push(10, 100, 10);
        assert_eq!(w.bits(), 100, "slot 0 is exactly 10 slots old: evicted");
        assert_eq!(w.effective_span(10), 1);
    }

    #[test]
    fn rate_matches_constant_stream() {
        let mut w = RateWindow::default();
        // 1000 bits every slot for 2000 slots at 0.5 ms → 2 Mbit/s.
        for s in 0..2000u64 {
            w.push(s, 1000, 2000);
        }
        let rate = w.rate_bps(2000, 0.0005);
        assert!((rate - 2.0e6).abs() / 2.0e6 < 1e-9, "rate {rate}");
    }

    #[test]
    fn steady_state_rate_is_exact_not_biased_low() {
        // Regression (PR 2): with the off-by-one span the window held 2001
        // slots of bits divided by 2000 — or, after partial fill, 2000
        // slots of bits divided by a hardcoded 2000 regardless of span.
        let mut w = RateWindow::default();
        for s in 0..5000u64 {
            w.push(s, 1000, 2000);
        }
        let rate = w.rate_bps(2000, 0.0005);
        assert!(
            (rate - 2.0e6).abs() < 1.0,
            "steady-state rate must be exactly 2 Mbit/s, got {rate}"
        );
    }

    #[test]
    fn cold_start_rate_is_unbiased() {
        // Regression (PR 2): a UE that has only been transmitting for 100
        // slots of a 2000-slot window used to see its rate divided by the
        // full window (20× under-read during ramp, Fig 14a).
        let mut w = RateWindow::default();
        for s in 0..100u64 {
            w.push(s, 1000, 2000);
        }
        let rate = w.rate_bps(2000, 0.0005);
        assert!(
            (rate - 2.0e6).abs() / 2.0e6 < 1e-9,
            "cold-start rate {rate} should be 2 Mbit/s, not 0.1 Mbit/s"
        );
    }

    #[test]
    fn single_sample_spans_one_slot() {
        let mut w = RateWindow::default();
        w.push(7, 500, 100);
        assert_eq!(w.effective_span(100), 1);
        let rate = w.rate_bps(100, 0.0005);
        assert!((rate - 1.0e6).abs() < 1.0, "{rate}");
    }

    #[test]
    fn estimator_separates_ues() {
        let mut e = ThroughputEstimator::new();
        e.record(Rnti(1), 10, 5000, 100);
        e.record(Rnti(2), 10, 9000, 100);
        assert_eq!(e.bits_in(Rnti(1), 0..20), 5000);
        assert_eq!(e.bits_in(Rnti(2), 0..20), 9000);
        assert_eq!(e.rntis(), vec![Rnti(1), Rnti(2)]);
    }

    #[test]
    fn forget_clears_live_window_but_keeps_recent_history() {
        let mut e = ThroughputEstimator::new();
        e.record(Rnti(1), 10, 5000, 100);
        e.forget(Rnti(1));
        assert_eq!(e.rate_bps(Rnti(1), 100, 0.0005), 0.0);
        assert_eq!(e.bits_in(Rnti(1), 0..20), 5000);
    }

    #[test]
    fn history_is_bounded_by_retention() {
        // Regression (PR 2): history grew one entry per recorded slot for
        // the life of the process.
        let mut e = ThroughputEstimator::with_retention(100);
        for s in 0..10_000u64 {
            e.record(Rnti(1), s, 1000, 50);
        }
        assert!(
            e.history_len(Rnti(1)) <= 101,
            "retention 100 must bound history, got {}",
            e.history_len(Rnti(1))
        );
        // bits_in stays correct over the retained range.
        assert_eq!(e.bits_in(Rnti(1), 9_950..10_000), 50 * 1000);
        // ... and reads zero for pruned slots.
        assert_eq!(e.bits_in(Rnti(1), 0..100), 0);
    }

    #[test]
    fn departed_ue_history_is_released_after_retention() {
        // Regression (PR 2): a departed UE's history lived forever — a
        // per-UE leak under long-running many-UE workloads.
        let mut e = ThroughputEstimator::with_retention(100);
        e.record(Rnti(1), 10, 5000, 50);
        e.forget(Rnti(1));
        // Still retained right after departure (evaluation window).
        e.prune(50);
        assert_eq!(e.bits_in(Rnti(1), 0..20), 5000);
        // Fully aged out → released.
        e.prune(500);
        assert_eq!(e.history_len(Rnti(1)), 0);
        assert!(e.rntis().is_empty());
        assert_eq!(e.bits_in(Rnti(1), 0..1000), 0);
    }

    #[test]
    fn prune_keeps_live_but_idle_ues_listed() {
        let mut e = ThroughputEstimator::with_retention(100);
        e.record(Rnti(1), 10, 5000, 50);
        e.prune(10_000);
        // History content aged out, but the UE is still live (not
        // forgotten) so it stays listed with an empty ring.
        assert_eq!(e.history_len(Rnti(1)), 0);
        assert_eq!(e.rntis(), vec![Rnti(1)]);
    }

    #[test]
    fn state_round_trip_preserves_rates_and_history() {
        let mut e = ThroughputEstimator::with_retention(5000);
        for s in 0..2500u64 {
            e.record(Rnti(1), s, 1000, 2000);
            if s % 2 == 0 {
                e.record(Rnti(2), s, 400, 2000);
            }
        }
        let back = ThroughputEstimator::from_state(&e.state());
        for r in [Rnti(1), Rnti(2)] {
            assert_eq!(
                back.rate_bps(r, 2000, 0.0005),
                e.rate_bps(r, 2000, 0.0005),
                "window rate must survive the round trip for {r}"
            );
            assert_eq!(back.bits_in(r, 0..3000), e.bits_in(r, 0..3000));
        }
        assert_eq!(back.rntis(), e.rntis());
        // Continued recording behaves identically post-restore.
        let mut live = e;
        let mut restored = back;
        live.record(Rnti(1), 2600, 800, 2000);
        restored.record(Rnti(1), 2600, 800, 2000);
        assert_eq!(
            restored.rate_bps(Rnti(1), 2000, 0.0005),
            live.rate_bps(Rnti(1), 2000, 0.0005)
        );
    }

    #[test]
    fn unknown_ue_rates_are_zero() {
        let e = ThroughputEstimator::new();
        assert_eq!(e.rate_bps(Rnti(42), 100, 0.0005), 0.0);
        assert_eq!(e.bits_in(Rnti(42), 0..100), 0);
    }
}
