//! Sliding-window per-UE bit-rate estimation (paper §3.2.2: "We record the
//! TBS for every UE in each TTI, maintaining a sliding window to calculate
//! the bit rate for each UE").

use nr_phy::types::Rnti;
use std::collections::{HashMap, VecDeque};

/// Sliding-window rate estimator for one UE.
#[derive(Debug, Clone, Default)]
pub struct RateWindow {
    /// (slot, bits) samples inside the window.
    samples: VecDeque<(u64, u64)>,
    /// Running sum of bits in the window.
    sum_bits: u64,
}

impl RateWindow {
    /// Record `bits` delivered in `slot`, evicting samples older than
    /// `window_slots`.
    pub fn push(&mut self, slot: u64, bits: u64, window_slots: u64) {
        self.samples.push_back((slot, bits));
        self.sum_bits += bits;
        let cutoff = slot.saturating_sub(window_slots);
        while let Some(&(s, b)) = self.samples.front() {
            if s < cutoff {
                self.samples.pop_front();
                self.sum_bits -= b;
            } else {
                break;
            }
        }
    }

    /// Bits currently inside the window (caller converts to a rate with
    /// the slot duration).
    pub fn bits(&self) -> u64 {
        self.sum_bits
    }

    /// Rate in bits/s given the window length and slot duration.
    pub fn rate_bps(&self, window_slots: u64, slot_s: f64) -> f64 {
        self.sum_bits as f64 / (window_slots as f64 * slot_s)
    }
}

/// Per-UE rate bookkeeping plus cell-total accounting.
#[derive(Debug, Default)]
pub struct ThroughputEstimator {
    windows: HashMap<Rnti, RateWindow>,
    /// Per-(UE, slot-bucket) delivered bits, for time-series export
    /// (Fig 14a).
    history: HashMap<Rnti, Vec<(u64, u64)>>,
}

impl ThroughputEstimator {
    /// Fresh estimator.
    pub fn new() -> ThroughputEstimator {
        ThroughputEstimator::default()
    }

    /// Record a decoded grant's TBS.
    pub fn record(&mut self, rnti: Rnti, slot: u64, tbs_bits: u32, window_slots: u64) {
        self.windows
            .entry(rnti)
            .or_default()
            .push(slot, tbs_bits as u64, window_slots);
        self.history
            .entry(rnti)
            .or_default()
            .push((slot, tbs_bits as u64));
    }

    /// Current estimated rate for a UE.
    pub fn rate_bps(&self, rnti: Rnti, window_slots: u64, slot_s: f64) -> f64 {
        self.windows
            .get(&rnti)
            .map(|w| w.rate_bps(window_slots, slot_s))
            .unwrap_or(0.0)
    }

    /// Total bits recorded for a UE in a slot range (for offline
    /// comparison against ground truth).
    pub fn bits_in(&self, rnti: Rnti, slots: std::ops::Range<u64>) -> u64 {
        self.history
            .get(&rnti)
            .map(|h| {
                h.iter()
                    .filter(|(s, _)| slots.contains(s))
                    .map(|(_, b)| *b)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// UEs with any recorded traffic.
    pub fn rntis(&self) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self.history.keys().copied().collect();
        v.sort();
        v
    }

    /// Drop a departed UE's live window (history is kept for evaluation).
    pub fn forget(&mut self, rnti: Rnti) {
        self.windows.remove(&rnti);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_old_samples() {
        let mut w = RateWindow::default();
        w.push(0, 100, 10);
        w.push(5, 100, 10);
        assert_eq!(w.bits(), 200);
        w.push(16, 100, 10);
        // Slot 0 is now outside [6, 16]; slot 5 too.
        assert_eq!(w.bits(), 200 - 100);
    }

    #[test]
    fn rate_matches_constant_stream() {
        let mut w = RateWindow::default();
        // 1000 bits every slot for 2000 slots at 0.5 ms → 2 Mbit/s.
        for s in 0..2000u64 {
            w.push(s, 1000, 2000);
        }
        let rate = w.rate_bps(2000, 0.0005);
        assert!((rate - 2.0e6).abs() / 2.0e6 < 0.01, "rate {rate}");
    }

    #[test]
    fn estimator_separates_ues() {
        let mut e = ThroughputEstimator::new();
        e.record(Rnti(1), 10, 5000, 100);
        e.record(Rnti(2), 10, 9000, 100);
        assert_eq!(e.bits_in(Rnti(1), 0..20), 5000);
        assert_eq!(e.bits_in(Rnti(2), 0..20), 9000);
        assert_eq!(e.rntis(), vec![Rnti(1), Rnti(2)]);
    }

    #[test]
    fn forget_clears_live_window_but_keeps_history() {
        let mut e = ThroughputEstimator::new();
        e.record(Rnti(1), 10, 5000, 100);
        e.forget(Rnti(1));
        assert_eq!(e.rate_bps(Rnti(1), 100, 0.0005), 0.0);
        assert_eq!(e.bits_in(Rnti(1), 0..20), 5000);
    }

    #[test]
    fn unknown_ue_rates_are_zero() {
        let e = ThroughputEstimator::new();
        assert_eq!(e.rate_bps(Rnti(42), 100, 0.0005), 0.0);
        assert_eq!(e.bits_in(Rnti(42), 0..100), 0);
    }
}
