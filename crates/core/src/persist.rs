//! Crash-safe session persistence: checkpoint + journal + warm restart.
//!
//! NR-Scope runs unattended for days against live cells; a process crash
//! must not cost the tracked C-RNTI population, throughput windows, or
//! sync-health state (re-discovering UEs passively takes until each next
//! RACHes). This module makes scope state durable with two artefacts:
//!
//! * **Snapshots** (`ckpt-<slot>.snap`): a versioned binary image of all
//!   recoverable state ([`SessionState`]), written atomically
//!   (tmp + fsync + rename + directory fsync) on a slot-count cadence
//!   from a background writer thread. Background snapshots are
//!   delta-encoded: a full image every [`PersistConfig::full_snapshot_every`]
//!   checkpoints, with intermediate snapshots storing only the fields
//!   that changed since the last full one.
//! * **Journal** (`journal-<start>.jnl`): an append-only record of every
//!   slot since the journal file's start, written as CRC-guarded binary
//!   **group-commit batches**: the hot path appends records to an
//!   in-memory buffer and a dedicated writer thread pushes sealed
//!   batches to the OS, amortising the write syscall across
//!   [`PersistConfig::flush_max_slots`] slots (or
//!   [`PersistConfig::flush_max_latency_us`], whichever trips first).
//!   `kill -9` loses at most the bounded tail that was not yet handed
//!   to the OS — a configurable loss window instead of the old
//!   flush-per-slot lose-at-most-one guarantee, at ~25× less hot-path
//!   cost. Checkpoint, rotation, and shutdown act as barriers that seal
//!   and drain the in-flight batch first.
//!
//! Recovery loads the newest *valid* snapshot (torn or corrupt ones are
//! detected by CRC + length prefix and skipped — never panic, never load
//! garbage) and replays the journal tail on top. Replay is idempotent via
//! the slot-sequence watermark: entries below the snapshot's slot are
//! already folded in and skip, so bytes are never double-counted no
//! matter how snapshot and journal overlap. A journal file may mix the
//! legacy `J1` JSONL records with binary batches (a session upgraded in
//! place appends batches after its old tail); the reader sniffs the
//! format at every record boundary.

use crate::binfmt;
use crate::clock::ClockRecoveryState;
use crate::config::{ScopeConfig, StoragePolicy};
use crate::governor::OverloadGovernor;
use crate::metrics::{Counter, Gauge, Metrics, MetricsSnapshot};
use crate::scope::{CellKnowledge, NrScope, ScopeStats, SyncState};
use crate::telemetry::TelemetryRecord;
use crate::throughput::ThroughputState;
use crate::tracker::{TrackerAux, TrackerState};
use nr_phy::types::{Pci, Rnti};
use nr_rrc::RrcSetup;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// CRC-32 slice-by-8 lookup tables, built at compile time from the
/// reflected IEEE polynomial. `CRC32_TABLES[0]` is the classic one-byte
/// table; table `k` advances a byte `k` positions through the register,
/// so eight bytes fold in with eight independent loads per iteration.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the guard on
/// every snapshot payload and journal batch. Slice-by-8: the group
/// commit checksums a multi-KiB payload per batch, so a bitwise loop
/// (~30x slower per byte) would hand a measurable slice of each slot
/// budget back to the checksum.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// CRC-32 over the concatenation of two slices (header fields + payload)
/// without materialising the concatenation.
fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    !crc32_update(crc32_update(0xFFFF_FFFF, a), b)
}

/// One state-mutating operation of a processed slot, in occurrence order.
/// Replaying a slot's ops (then overwriting with its [`MicroState`])
/// reconstructs the scope exactly as the live run left it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SlotOp {
    /// A UE entered the tracked set (MSG 4 promotion or hypothesis-retry
    /// restore — the distinction washes out because the entry's aux image
    /// carries the bookkeeping verbatim).
    Track {
        /// The C-RNTI tracked.
        rnti: Rnti,
        /// The RRC Setup its state was built from.
        rrc: RrcSetup,
    },
    /// A telemetry record was produced (activity, HARQ memory, and
    /// throughput-window side effects are re-derived from the record).
    Record(TelemetryRecord),
    /// Housekeeping expired an idle UE.
    Expire {
        /// The expired C-RNTI.
        rnti: Rnti,
    },
}

/// End-of-slot continuous state, carried in the *final* record of every
/// group-commit batch so replay never re-derives sync/governor/stats
/// decisions (and so cannot drift from what the live run concluded).
/// Torn batches are discarded whole, so replay always lands on a record
/// that carries one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroState {
    /// Cell knowledge (PCI, MIB, SIB1, frame anchor).
    pub cell: CellKnowledge,
    /// Sync-health machine state.
    pub sync: SyncState,
    /// Consecutive unhealthy slots feeding that machine.
    pub unhealthy_streak: u64,
    /// PCI believed before a sync loss (reacquisition hint).
    pub last_pci: Option<Pci>,
    /// Session counters.
    pub stats: ScopeStats,
    /// Overload-governor ladder state.
    pub governor: OverloadGovernor,
    /// Tracker bookkeeping (pending TC-RNTIs, expiry shadow, RRC cache).
    pub tracker_aux: TrackerAux,
    /// Timing-recovery loop state (`None` when no clock observables ever
    /// arrived). Defaulted so pre-clock journals still parse.
    #[serde(default)]
    pub clock: Option<ClockRecoveryState>,
}

/// One journal record: everything slot `seq` did to the session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The slot this entry describes.
    pub seq: u64,
    /// Whether the front end dropped this slot (diagnostics only; replay
    /// treats both kinds identically).
    pub dropped: bool,
    /// Ordered state mutations.
    pub ops: Vec<SlotOp>,
    /// End-of-slot continuous state. Present on every legacy JSONL record
    /// and on the final record of each binary batch; `None` on interior
    /// batch records (ops replay alone carries them, and the batch's
    /// closing record re-anchors the continuous state exactly).
    #[serde(default)]
    pub micro: Option<MicroState>,
}

/// The full recoverable image of a session — what a snapshot holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionState {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Next slot to process; doubles as the replay watermark.
    pub slot: u64,
    /// Cell knowledge.
    pub cell: CellKnowledge,
    /// Sync-health machine state.
    pub sync: SyncState,
    /// Consecutive unhealthy slots.
    pub unhealthy_streak: u64,
    /// Reacquisition PCI hint.
    pub last_pci: Option<Pci>,
    /// Out-of-band PCI the session was started with.
    pub assumed_pci: Option<Pci>,
    /// Session counters.
    pub stats: ScopeStats,
    /// Overload-governor ladder state.
    pub governor: OverloadGovernor,
    /// UE tracker (table + bookkeeping).
    pub tracker: TrackerState,
    /// Throughput estimator (windows + history).
    pub throughput: ThroughputState,
    /// Metrics counters at snapshot time.
    pub metrics: MetricsSnapshot,
    /// Timing-recovery loop state (`None` when no clock observables ever
    /// arrived). Defaulted so pre-clock snapshots still parse.
    #[serde(default)]
    pub clock: Option<ClockRecoveryState>,
}

/// What recovery found and did — written as `RECOVERY_report.json` by the
/// supervisor soak so CI can assert warm-restart invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Serialisation schema version.
    pub schema_version: u32,
    /// Whether any prior state was found (false = cold start).
    pub resumed: bool,
    /// Slot of the snapshot restored, if one was valid.
    pub snapshot_slot: Option<u64>,
    /// Snapshots rejected as torn/corrupt/future-schema before one loaded.
    pub corrupt_checkpoints_skipped: u64,
    /// Journal entries applied on top of the snapshot.
    pub replayed_entries: u64,
    /// Journal segments discarded as truncated or corrupt.
    pub journal_entries_discarded: u64,
    /// The slot the session resumed at (watermark after replay).
    pub resumed_slot: u64,
    /// UEs tracked at resume.
    pub recovered_ues: u64,
}

const SNAP_MAGIC: &str = "NRSCOPE-SNAP";
const JOURNAL_MAGIC: &str = "J1";
const SNAP_PREFIX: &str = "ckpt-";
const SNAP_SUFFIX: &str = ".snap";
const JOURNAL_PREFIX: &str = "journal-";
const JOURNAL_SUFFIX: &str = ".jnl";

// ---------------------------------------------------------------------------
// Storage backend abstraction + deterministic fault injection.
//
// Every *mutating* file operation the persistence layer performs — open
// for append, truncating create, write, fsync, rename, dir-fsync,
// remove — goes through a `StorageBackend`, so a test or bench can swap
// the real filesystem for a `FaultyBackend` that injects scheduled
// faults at chosen operation counts, the way `ImpairmentSchedule`
// injects radio faults. Read paths stay direct `std::fs`: a read failure
// is already handled by recovery's corruption tolerance and cannot lose
// data that was durably written.
// ---------------------------------------------------------------------------

/// A writable file handle issued by a [`StorageBackend`].
pub trait StorageFile: Send {
    /// Write all of `buf` (the durability unit — a whole journal batch or
    /// snapshot image per call).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file contents and metadata to the device.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) to exactly `len` bytes — the retry path cuts
    /// a short write back to the last committed batch boundary with this.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn file_len(&self) -> io::Result<u64>;
}

/// The set of mutating filesystem operations the persistence layer needs.
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open (creating if needed) for append — the journal path.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Create truncating — tmp snapshots and the re-probe file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Atomic rename (snapshot tmp → final name).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file (pruning).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory so a rename within it is itself durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealBackend;

impl StorageFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)
    }

    fn file_len(&self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

impl StorageBackend for RealBackend {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(
            OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

fn err_eio() -> io::Error {
    io::Error::from_raw_os_error(5) // EIO
}

fn err_enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28)
}

/// One kind of injectable storage fault. Serialisable so a chaos plan can
/// script storage windows for a supervised child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// `write` fails with `EIO` (transient within its window, persistent
    /// when the window is unbounded).
    WriteEio,
    /// `write` lands only the first half of the buffer, then fails with
    /// `EIO` — the classic torn append.
    WriteShort,
    /// `write` fails with `ENOSPC` (disk full).
    WriteEnospc,
    /// `write` reports success but the bytes are silently dropped — the
    /// fsync-gate lie (data lost despite every syscall reporting ok).
    WriteFsyncGate,
    /// `fsync` fails with `EIO` (also fails the re-probe).
    FsyncEio,
    /// `rename` fails with `EIO` (breaks atomic snapshot installs).
    RenameFail,
    /// `open`/`create` fails with `EIO` (dead disk on reopen).
    OpenFail,
}

impl FaultKind {
    fn is_write(self) -> bool {
        matches!(
            self,
            FaultKind::WriteEio
                | FaultKind::WriteShort
                | FaultKind::WriteEnospc
                | FaultKind::WriteFsyncGate
        )
    }
}

/// Deterministic seeded fault schedule, mirroring `ImpairmentSchedule`:
/// each fault kind fires inside half-open windows of *operation indices*,
/// counted per operation class (writes, fsyncs, renames, opens — each
/// class has its own counter, shared across every file the backend ever
/// issues). An optional seeded per-write `EIO` probability adds random
/// transients on top.
#[derive(Debug, Clone, Default)]
pub struct StorageFaultSchedule {
    seed: u64,
    faults: Vec<(FaultKind, Range<u64>)>,
    write_eio_prob: f64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StorageFaultSchedule {
    /// An empty schedule (no faults) with the given random seed.
    pub fn new(seed: u64) -> StorageFaultSchedule {
        StorageFaultSchedule {
            seed,
            ..StorageFaultSchedule::default()
        }
    }

    fn with(mut self, kind: FaultKind, window: Range<u64>) -> StorageFaultSchedule {
        self.faults.push((kind, window));
        self
    }

    /// Write ops in `window` fail with `EIO`.
    pub fn with_write_eio(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::WriteEio, window)
    }

    /// Write ops in `window` land half the buffer, then fail with `EIO`.
    pub fn with_short_writes(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::WriteShort, window)
    }

    /// Write ops in `window` fail with `ENOSPC`.
    pub fn with_enospc(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::WriteEnospc, window)
    }

    /// Write ops in `window` report success but drop the bytes.
    pub fn with_fsync_gate(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::WriteFsyncGate, window)
    }

    /// Fsync ops in `window` fail with `EIO`.
    pub fn with_fsync_eio(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::FsyncEio, window)
    }

    /// Rename ops in `window` fail with `EIO`.
    pub fn with_rename_failures(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::RenameFail, window)
    }

    /// Open/create ops in `window` fail with `EIO`.
    pub fn with_open_failures(self, window: Range<u64>) -> StorageFaultSchedule {
        self.with(FaultKind::OpenFail, window)
    }

    /// Every write op additionally fails with `EIO` at probability `p`,
    /// drawn from the schedule's seed (deterministic per op index).
    pub fn with_random_write_eio(mut self, p: f64) -> StorageFaultSchedule {
        self.write_eio_prob = p.clamp(0.0, 1.0);
        self
    }
}

#[derive(Debug)]
struct FaultState {
    schedule: StorageFaultSchedule,
    rng: u64,
    writes: u64,
    fsyncs: u64,
    renames: u64,
    opens: u64,
    removes: u64,
}

impl FaultState {
    fn fault_at(&self, class: impl Fn(FaultKind) -> bool, i: u64) -> Option<FaultKind> {
        self.schedule
            .faults
            .iter()
            .find(|(k, w)| class(*k) && w.contains(&i))
            .map(|(k, _)| *k)
    }
}

/// A [`StorageBackend`] wrapping the real filesystem that injects the
/// faults its [`StorageFaultSchedule`] dictates. Clones share one fault
/// state, so operation counts are global across every file and clone —
/// deterministic given a deterministic operation sequence.
#[derive(Debug, Clone)]
pub struct FaultyBackend {
    state: Arc<Mutex<FaultState>>,
}

impl FaultyBackend {
    /// Wrap the real filesystem with `schedule`.
    pub fn new(schedule: StorageFaultSchedule) -> FaultyBackend {
        let rng = schedule.seed ^ 0x5357_4F52_4147_4531; // "STORAGE1"
        FaultyBackend {
            state: Arc::new(Mutex::new(FaultState {
                schedule,
                rng,
                writes: 0,
                fsyncs: 0,
                renames: 0,
                opens: 0,
                removes: 0,
            })),
        }
    }

    /// Arm another fault window at runtime (op indices stay absolute, so
    /// `backend.writes()..` makes a fault persistent "from now on").
    pub fn arm(&self, kind: FaultKind, window: Range<u64>) {
        lock_clean(&self.state).schedule.faults.push((kind, window));
    }

    /// Disarm every scheduled fault (the "disk recovered" transition).
    pub fn clear_faults(&self) {
        let mut s = lock_clean(&self.state);
        s.schedule.faults.clear();
        s.schedule.write_eio_prob = 0.0;
    }

    /// Write operations attempted so far (faulted or not).
    pub fn writes(&self) -> u64 {
        lock_clean(&self.state).writes
    }

    /// Fsync operations attempted so far.
    pub fn fsyncs(&self) -> u64 {
        lock_clean(&self.state).fsyncs
    }

    /// Rename operations attempted so far.
    pub fn renames(&self) -> u64 {
        lock_clean(&self.state).renames
    }

    /// Open/create operations attempted so far.
    pub fn opens(&self) -> u64 {
        lock_clean(&self.state).opens
    }

    /// Remove operations attempted so far.
    pub fn removes(&self) -> u64 {
        lock_clean(&self.state).removes
    }

    fn next_write_fault(&self) -> Option<FaultKind> {
        let mut s = lock_clean(&self.state);
        let i = s.writes;
        s.writes += 1;
        if let Some(k) = s.fault_at(FaultKind::is_write, i) {
            return Some(k);
        }
        if s.schedule.write_eio_prob > 0.0 {
            let draw = (splitmix64(&mut s.rng) >> 11) as f64 / (1u64 << 53) as f64;
            if draw < s.schedule.write_eio_prob {
                return Some(FaultKind::WriteEio);
            }
        }
        None
    }

    fn next_fsync_fault(&self) -> Option<FaultKind> {
        let mut s = lock_clean(&self.state);
        let i = s.fsyncs;
        s.fsyncs += 1;
        s.fault_at(|k| k == FaultKind::FsyncEio, i)
    }

    fn next_rename_fault(&self) -> Option<FaultKind> {
        let mut s = lock_clean(&self.state);
        let i = s.renames;
        s.renames += 1;
        s.fault_at(|k| k == FaultKind::RenameFail, i)
    }

    fn next_open_fault(&self) -> Option<FaultKind> {
        let mut s = lock_clean(&self.state);
        let i = s.opens;
        s.opens += 1;
        s.fault_at(|k| k == FaultKind::OpenFail, i)
    }
}

struct FaultyFile {
    real: File,
    faults: FaultyBackend,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.faults.next_write_fault() {
            None => io::Write::write_all(&mut self.real, buf),
            Some(FaultKind::WriteEio) => Err(err_eio()),
            Some(FaultKind::WriteEnospc) => Err(err_enospc()),
            Some(FaultKind::WriteShort) => {
                let _ = io::Write::write_all(&mut self.real, &buf[..buf.len() / 2]);
                Err(err_eio())
            }
            // The lie: every syscall reports success, the bytes are gone.
            Some(FaultKind::WriteFsyncGate) => Ok(()),
            Some(_) => Err(err_eio()),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.faults.next_fsync_fault() {
            None => self.real.sync_all(),
            Some(_) => Err(err_eio()),
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // Not faulted: truncate is the *recovery* half of the retry path.
        self.real.set_len(len)
    }

    fn file_len(&self) -> io::Result<u64> {
        Ok(self.real.metadata()?.len())
    }
}

impl StorageBackend for FaultyBackend {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if self.next_open_fault().is_some() {
            return Err(err_eio());
        }
        Ok(Box::new(FaultyFile {
            real: OpenOptions::new().create(true).append(true).open(path)?,
            faults: self.clone(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        if self.next_open_fault().is_some() {
            return Err(err_eio());
        }
        Ok(Box::new(FaultyFile {
            real: File::create(path)?,
            faults: self.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.next_rename_fault().is_some() {
            return Err(err_eio());
        }
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        lock_clean(&self.state).removes += 1;
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.next_fsync_fault() {
            None => File::open(dir)?.sync_all(),
            Some(_) => Err(err_eio()),
        }
    }
}

// ---------------------------------------------------------------------------
// Durability degradation ladder.
// ---------------------------------------------------------------------------

/// The durability ladder: how much the session currently promises about
/// crash survival. Stored as a `u64` in a shared atomic (and exported as
/// the `durability_rung` gauge), so the writer thread, the hot path, and
/// fleet rollups all see one truth without locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DurabilityRung {
    /// Journal + checkpoints healthy: `kill -9` loses at most
    /// [`PersistConfig::loss_window_slots`].
    Durable = 0,
    /// A recent storage error was retried (or recovery from `NonDurable`
    /// is being confirmed): same bounded loss window, but the disk is
    /// suspect. Promotes back to `Durable` after a clean-write streak.
    DurableDegraded = 1,
    /// Storage failed persistently: decoding continues, nothing is being
    /// journalled, and the loss window is **unbounded** — reported
    /// honestly as such. A background probe re-promotes when the disk
    /// recovers.
    NonDurable = 2,
}

impl DurabilityRung {
    /// All rungs, best first.
    pub const ALL: [DurabilityRung; 3] = [
        DurabilityRung::Durable,
        DurabilityRung::DurableDegraded,
        DurabilityRung::NonDurable,
    ];

    /// Stable snake_case name used in rollups and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DurabilityRung::Durable => "durable",
            DurabilityRung::DurableDegraded => "durable_degraded",
            DurabilityRung::NonDurable => "non_durable",
        }
    }

    /// Decode the gauge/atomic encoding (clamps unknown values to
    /// `NonDurable` — the honest direction to be wrong in).
    pub fn from_u64(v: u64) -> DurabilityRung {
        match v {
            0 => DurabilityRung::Durable,
            1 => DurabilityRung::DurableDegraded,
            _ => DurabilityRung::NonDurable,
        }
    }
}

/// Consecutive first-attempt batch writes before `DurableDegraded`
/// promotes back to `Durable` — the governor's promote-hysteresis shape
/// applied to disks (one good write after an error streak proves little).
const PROMOTE_CLEAN_BATCHES: u32 = 4;

/// Base backoff before a failed batch write is retried, doubling per
/// attempt. Retries run on the writer thread: with the default
/// `storage_retry_max` of 4 the worst case blocks it ~7.5 ms — bounded,
/// and invisible to the capture hot path unless its queue fills.
const RETRY_BACKOFF_BASE_US: u64 = 500;

/// Cap on the re-probe flap backoff exponent
/// (`reprobe_interval_slots << exp`), the governor's demote-fast /
/// promote-slow hysteresis shape: 2048-slot probes degrade to ~2
/// minutes between attempts on a disk that stays dead.
const MAX_PROBE_FLAP_EXP: u32 = 6;

// ---------------------------------------------------------------------------
// Binary group-commit batch format.
//
//   offset  size  field
//   0       4     magic "NRSB"
//   4       1     format version (1)
//   5       4     payload length, u32 LE
//   9       4     CRC-32 of payload, u32 LE
//   13      4     record count, u32 LE
//   17      ...   payload: `record count` records back to back
//
// Each record:
//   varint  seq
//   u8      flags (bit 0 = slot dropped, bit 1 = MicroState follows ops)
//   varint  op count
//   ...     ops, binfmt-encoded SlotOp values
//   [...]   binfmt-encoded MicroState, iff flag bit 1
//
// The batch is the durability unit: a torn or bit-flipped batch fails its
// length or CRC check and is discarded whole, so replay always stops at a
// batch boundary — whose final record carries the MicroState re-anchor.
// ---------------------------------------------------------------------------

/// Magic prefix of a binary journal batch.
pub const BATCH_MAGIC: &[u8; 4] = b"NRSB";
const BATCH_VERSION: u8 = 1;
const BATCH_HEADER_LEN: usize = 17;
const FLAG_DROPPED: u8 = 0b01;
const FLAG_MICRO: u8 = 0b10;

/// Checked little-endian u32 read: `None` instead of a panic when the
/// slice is short. Header-length checks at the call sites should make a
/// short read impossible, but decode paths handle untrusted bytes — a
/// framing bug must degrade to "corrupt record", never a panic.
fn read_u32_le(data: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(
        data.get(at..at.checked_add(4)?)?.try_into().ok()?,
    ))
}

/// Checked little-endian u64 read (see [`read_u32_le`]).
fn read_u64_le(data: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(
        data.get(at..at.checked_add(8)?)?.try_into().ok()?,
    ))
}

fn push_record_bytes(buf: &mut Vec<u8>, seq: u64, dropped: bool, ops: &[SlotOp]) -> usize {
    binfmt::put_varint(buf, seq);
    let flags_at = buf.len();
    buf.push(if dropped { FLAG_DROPPED } else { 0 });
    binfmt::put_varint(buf, ops.len() as u64);
    for op in ops {
        put_slot_op(buf, op);
    }
    flags_at
}

/// Hand-rolled encoding of the journal's hottest value, byte-for-byte
/// identical to `binfmt::put_value(buf, op)` (pinned by the
/// `direct_slot_op_encoding_matches_derived` test). The derived path
/// builds a `Content` tree per value — fine for checkpoints, but the
/// dominant CPU cost at slot rate — so the per-slot `Record` variant is
/// written straight to bytes and the rare variants keep the derived path.
fn put_slot_op(buf: &mut Vec<u8>, op: &SlotOp) {
    use nr_phy::dci::DciFormat;
    use nr_phy::pdcch::AggregationLevel;
    use nr_phy::types::RntiType;

    let SlotOp::Record(r) = op else {
        binfmt::put_value(buf, op);
        return;
    };
    binfmt::put_map_header(buf, 1);
    binfmt::put_key(buf, "Record");
    binfmt::put_map_header(buf, 19);
    binfmt::put_key(buf, "schema_version");
    binfmt::put_u64(buf, u64::from(r.schema_version));
    binfmt::put_key(buf, "slot");
    binfmt::put_u64(buf, r.slot);
    binfmt::put_key(buf, "sfn");
    binfmt::put_u64(buf, u64::from(r.sfn));
    binfmt::put_key(buf, "rnti");
    binfmt::put_u64(buf, u64::from(r.rnti.0));
    binfmt::put_key(buf, "rnti_type");
    binfmt::put_str(
        buf,
        match r.rnti_type {
            RntiType::C => "C",
            RntiType::Tc => "Tc",
            RntiType::Ra => "Ra",
            RntiType::Si => "Si",
            RntiType::P => "P",
        },
    );
    binfmt::put_key(buf, "format");
    binfmt::put_str(
        buf,
        match r.format {
            DciFormat::Ul0_1 => "Ul0_1",
            DciFormat::Dl1_1 => "Dl1_1",
        },
    );
    binfmt::put_key(buf, "level");
    binfmt::put_str(
        buf,
        match r.level {
            AggregationLevel::L1 => "L1",
            AggregationLevel::L2 => "L2",
            AggregationLevel::L4 => "L4",
            AggregationLevel::L8 => "L8",
            AggregationLevel::L16 => "L16",
        },
    );
    binfmt::put_key(buf, "cce_start");
    binfmt::put_u64(buf, r.cce_start as u64);
    binfmt::put_key(buf, "prb_start");
    binfmt::put_u64(buf, r.prb_start as u64);
    binfmt::put_key(buf, "prb_len");
    binfmt::put_u64(buf, r.prb_len as u64);
    binfmt::put_key(buf, "symbol_start");
    binfmt::put_u64(buf, r.symbol_start as u64);
    binfmt::put_key(buf, "symbol_len");
    binfmt::put_u64(buf, r.symbol_len as u64);
    binfmt::put_key(buf, "mcs");
    binfmt::put_u64(buf, u64::from(r.mcs));
    binfmt::put_key(buf, "ndi");
    binfmt::put_u64(buf, u64::from(r.ndi));
    binfmt::put_key(buf, "rv");
    binfmt::put_u64(buf, u64::from(r.rv));
    binfmt::put_key(buf, "harq_id");
    binfmt::put_u64(buf, u64::from(r.harq_id));
    binfmt::put_key(buf, "layers");
    binfmt::put_u64(buf, r.layers as u64);
    binfmt::put_key(buf, "tbs");
    binfmt::put_u64(buf, u64::from(r.tbs));
    binfmt::put_key(buf, "is_retx");
    binfmt::put_bool(buf, r.is_retx);
}

fn finish_batch(buf: &mut [u8], n_records: u32) {
    let payload_len = (buf.len() - BATCH_HEADER_LEN) as u32;
    let crc = crc32(&buf[BATCH_HEADER_LEN..]);
    buf[..4].copy_from_slice(BATCH_MAGIC);
    buf[4] = BATCH_VERSION;
    buf[5..9].copy_from_slice(&payload_len.to_le_bytes());
    buf[9..13].copy_from_slice(&crc.to_le_bytes());
    buf[13..17].copy_from_slice(&n_records.to_le_bytes());
}

/// Encode a slice of entries as one sealed binary batch (each entry's
/// `micro` presence is honoured verbatim).
pub fn encode_batch(entries: &[JournalEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_batch_into(&mut buf, entries);
    buf
}

/// [`encode_batch`] into a reused scratch buffer (cleared first). Encoding
/// runs on the writer thread, off the capture hot path — the hot path
/// only moves already-owned [`JournalEntry`] values into the batch.
fn encode_batch_into(buf: &mut Vec<u8>, entries: &[JournalEntry]) {
    buf.clear();
    buf.resize(BATCH_HEADER_LEN, 0);
    for e in entries {
        let flags_at = push_record_bytes(buf, e.seq, e.dropped, &e.ops);
        if let Some(m) = &e.micro {
            buf[flags_at] |= FLAG_MICRO;
            binfmt::put_value(buf, m);
        }
    }
    finish_batch(buf, entries.len() as u32);
}

/// Parse one batch at the start of `data`. Returns the decoded entries and
/// the byte length consumed, or `None` for anything torn, corrupt,
/// non-monotonic, or from a future format version.
fn parse_batch(data: &[u8], prev_seq: Option<u64>) -> Option<(Vec<JournalEntry>, usize)> {
    if data.len() < BATCH_HEADER_LEN || &data[..4] != BATCH_MAGIC || data[4] != BATCH_VERSION {
        return None;
    }
    let payload_len = read_u32_le(data, 5)? as usize;
    let crc = read_u32_le(data, 9)?;
    let n_records = read_u32_le(data, 13)?;
    let end = BATCH_HEADER_LEN.checked_add(payload_len)?;
    if end > data.len() {
        return None; // torn tail
    }
    let payload = &data[BATCH_HEADER_LEN..end];
    if crc32(payload) != crc {
        return None;
    }
    // Each record costs at least 3 bytes; a count the payload cannot back
    // is corrupt (and the CRC matching it would be miraculous).
    if n_records as usize > payload_len.max(1) {
        return None;
    }
    let mut entries = Vec::with_capacity(n_records as usize);
    let mut pos = 0usize;
    let mut prev = prev_seq;
    for _ in 0..n_records {
        let seq = binfmt::get_varint(payload, &mut pos)?;
        // Sequences must strictly advance within a file; a repeat or a
        // jump backwards means the file was stitched or corrupted.
        if prev.is_some_and(|p| seq <= p) {
            return None;
        }
        prev = Some(seq);
        let flags = *payload.get(pos)?;
        pos += 1;
        if flags & !(FLAG_DROPPED | FLAG_MICRO) != 0 {
            return None;
        }
        let n_ops = binfmt::get_varint(payload, &mut pos)? as usize;
        if n_ops > payload.len().saturating_sub(pos) {
            return None;
        }
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            ops.push(binfmt::get_value::<SlotOp>(payload, &mut pos)?);
        }
        let micro = if flags & FLAG_MICRO != 0 {
            Some(binfmt::get_value::<MicroState>(payload, &mut pos)?)
        } else {
            None
        };
        entries.push(JournalEntry {
            seq,
            dropped: flags & FLAG_DROPPED != 0,
            ops,
            micro,
        });
    }
    if pos != payload.len() {
        return None; // slack bytes inside a CRC-valid payload: framing bug
    }
    Some((entries, end))
}

/// Append one legacy journal record: `J1 <len:08x> <crc:08x> <json>\n`.
/// Kept as the writer for upgrade fixtures and mixed-format tests; the
/// live path writes binary batches via [`JournalWriter`].
pub fn append_journal_entry<W: Write>(w: &mut W, e: &JournalEntry) -> io::Result<()> {
    let json = serde_json::to_string(e).map_err(io::Error::from)?;
    writeln!(
        w,
        "{JOURNAL_MAGIC} {:08x} {:08x} {json}",
        json.len(),
        crc32(json.as_bytes())
    )
}

/// Parse journal bytes, stopping at the first invalid record (truncated
/// tail, bad CRC, zero-length or malformed payload, non-monotonic
/// sequence, torn batch). Returns the valid prefix and the number of
/// discarded segments. The format is sniffed at every record boundary:
/// `J1 ` starts a legacy JSONL record, `NRSB` a binary batch — so a file
/// whose session was upgraded mid-stream replays end to end.
pub fn read_journal_bytes(data: &[u8]) -> (Vec<JournalEntry>, u64) {
    let mut out: Vec<JournalEntry> = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let rest = &data[pos..];
        let prev = out.last().map(|e| e.seq);
        if rest.starts_with(BATCH_MAGIC) {
            match parse_batch(rest, prev) {
                Some((mut entries, used)) => {
                    out.append(&mut entries);
                    pos += used;
                }
                None => break,
            }
        } else if rest.starts_with(JOURNAL_MAGIC.as_bytes()) {
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                break; // torn JSONL tail
            };
            match parse_journal_segment(&rest[..nl], prev) {
                Some(entry) => {
                    out.push(entry);
                    pos += nl + 1;
                }
                None => break,
            }
        } else {
            break;
        }
    }
    // Everything from the first bad byte on is untrusted: count the
    // remaining line-ish segments (≥ 1 whenever anything was discarded).
    let discarded = if pos >= data.len() {
        0
    } else {
        (data[pos..]
            .split(|&b| b == b'\n')
            .filter(|s| !s.is_empty())
            .count() as u64)
            .max(1)
    };
    (out, discarded)
}

fn parse_journal_segment(seg: &[u8], prev_seq: Option<u64>) -> Option<JournalEntry> {
    let text = std::str::from_utf8(seg).ok()?;
    let rest = text.strip_prefix(JOURNAL_MAGIC)?.strip_prefix(' ')?;
    let (len_hex, rest) = rest.split_at_checked(8)?;
    let rest = rest.strip_prefix(' ')?;
    let (crc_hex, rest) = rest.split_at_checked(8)?;
    let json = rest.strip_prefix(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if len == 0 || json.len() != len || crc32(json.as_bytes()) != crc {
        return None;
    }
    let entry: JournalEntry = serde_json::from_str(json).ok()?;
    if prev_seq.is_some_and(|p| entry.seq <= p) {
        return None;
    }
    Some(entry)
}

// ---------------------------------------------------------------------------
// Binary snapshot format.
//
//   offset  size  field
//   0       4     magic "NRCK"
//   4       1     schema version
//   5       1     kind (0 = full, 1 = delta)
//   6       8     snapshot slot, u64 LE
//   14      8     base slot (the full snapshot a delta overlays; equals
//                 the snapshot slot for fulls), u64 LE
//   22      4     payload length, u32 LE
//   26      4     CRC-32 over bytes [4..26) + payload, u32 LE
//   30      ...   payload
//
// Payload: varint field count, then per field `u8 id | varint len | bytes`
// where the bytes are the binfmt encoding of that SessionState field. A
// delta stores only the fields whose encoding differs from its base full
// snapshot; loading overlays them on the base's fields. The CRC covers
// the header metadata too, so a bit flip anywhere in the file is caught.
// ---------------------------------------------------------------------------

const SNAP_BIN_MAGIC: &[u8; 4] = b"NRCK";
const SNAP_KIND_FULL: u8 = 0;
const SNAP_KIND_DELTA: u8 = 1;
const SNAP_BIN_HEADER_LEN: usize = 30;

const F_SCHEMA: u8 = 0;
const F_SLOT: u8 = 1;
const F_CELL: u8 = 2;
const F_SYNC: u8 = 3;
const F_STREAK: u8 = 4;
const F_LAST_PCI: u8 = 5;
const F_ASSUMED_PCI: u8 = 6;
const F_STATS: u8 = 7;
const F_GOVERNOR: u8 = 8;
const F_TRACKER: u8 = 9;
const F_THROUGHPUT: u8 = 10;
const F_METRICS: u8 = 11;
const F_CLOCK: u8 = 12;
/// Field count written by this version.
const SNAP_FIELDS: usize = 13;
/// Minimum accepted field count: pre-clock snapshots carry 12 fields and
/// load with `clock: None` (the same admission older JSON snapshots get
/// from `#[serde(default)]`).
const SNAP_FIELDS_MIN: usize = 12;

type SnapFields = Vec<(u8, Vec<u8>)>;

fn encode_state_fields(state: &SessionState) -> SnapFields {
    vec![
        (F_SCHEMA, binfmt::encode_value(&state.schema_version)),
        (F_SLOT, binfmt::encode_value(&state.slot)),
        (F_CELL, binfmt::encode_value(&state.cell)),
        (F_SYNC, binfmt::encode_value(&state.sync)),
        (F_STREAK, binfmt::encode_value(&state.unhealthy_streak)),
        (F_LAST_PCI, binfmt::encode_value(&state.last_pci)),
        (F_ASSUMED_PCI, binfmt::encode_value(&state.assumed_pci)),
        (F_STATS, binfmt::encode_value(&state.stats)),
        (F_GOVERNOR, binfmt::encode_value(&state.governor)),
        (F_TRACKER, binfmt::encode_value(&state.tracker)),
        (F_THROUGHPUT, binfmt::encode_value(&state.throughput)),
        (F_METRICS, binfmt::encode_value(&state.metrics)),
        (F_CLOCK, binfmt::encode_value(&state.clock)),
    ]
}

fn state_from_fields(fields: &SnapFields) -> Option<SessionState> {
    if fields.len() < SNAP_FIELDS_MIN || fields.len() > SNAP_FIELDS {
        return None;
    }
    let get = |id: u8| {
        fields
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, b)| b.as_slice())
    };
    Some(SessionState {
        schema_version: binfmt::decode_value(get(F_SCHEMA)?)?,
        slot: binfmt::decode_value(get(F_SLOT)?)?,
        cell: binfmt::decode_value(get(F_CELL)?)?,
        sync: binfmt::decode_value(get(F_SYNC)?)?,
        unhealthy_streak: binfmt::decode_value(get(F_STREAK)?)?,
        last_pci: binfmt::decode_value(get(F_LAST_PCI)?)?,
        assumed_pci: binfmt::decode_value(get(F_ASSUMED_PCI)?)?,
        stats: binfmt::decode_value(get(F_STATS)?)?,
        governor: binfmt::decode_value(get(F_GOVERNOR)?)?,
        tracker: binfmt::decode_value(get(F_TRACKER)?)?,
        throughput: binfmt::decode_value(get(F_THROUGHPUT)?)?,
        metrics: binfmt::decode_value(get(F_METRICS)?)?,
        clock: match get(F_CLOCK) {
            Some(bytes) => binfmt::decode_value(bytes)?,
            None => None,
        },
    })
}

fn encode_snapshot_payload(fields: &SnapFields) -> Vec<u8> {
    let mut payload = Vec::new();
    binfmt::put_varint(&mut payload, fields.len() as u64);
    for (id, bytes) in fields {
        payload.push(*id);
        binfmt::put_varint(&mut payload, bytes.len() as u64);
        payload.extend_from_slice(bytes);
    }
    payload
}

fn decode_snapshot_payload(payload: &[u8]) -> Option<SnapFields> {
    let mut pos = 0usize;
    let n = binfmt::get_varint(payload, &mut pos)? as usize;
    if n > payload.len().saturating_sub(pos) {
        return None;
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let id = *payload.get(pos)?;
        pos += 1;
        let len = binfmt::get_varint(payload, &mut pos)? as usize;
        let end = pos.checked_add(len)?;
        if end > payload.len() {
            return None;
        }
        fields.push((id, payload[pos..end].to_vec()));
        pos = end;
    }
    (pos == payload.len()).then_some(fields)
}

/// Directory of checkpoints + journals for one session, with atomic
/// snapshot writes and corruption-tolerant loading. All mutating file
/// operations go through the store's [`StorageBackend`].
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
}

impl SessionStore {
    /// Open (creating if needed) a session directory on the real
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<SessionStore> {
        SessionStore::with_backend(dir, Arc::new(RealBackend))
    }

    /// Open (creating if needed) a session directory through `backend`.
    pub fn with_backend(
        dir: impl Into<PathBuf>,
        backend: Arc<dyn StorageBackend>,
    ) -> io::Result<SessionStore> {
        let dir = dir.into();
        backend.create_dir_all(&dir)?;
        Ok(SessionStore { dir, backend })
    }

    /// The storage backend mutating operations go through.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Small test write + fsync to a probe file, then best-effort
    /// cleanup: the `NonDurable` → recovery check. Returns `true` iff
    /// the disk accepted and synced the bytes.
    pub fn probe_write(&self) -> bool {
        let path = self.dir.join(".probe");
        let result = (|| -> io::Result<()> {
            let mut f = self.backend.create(&path)?;
            f.write_all(b"nrscope-durability-probe")?;
            f.sync_all()
        })();
        let _ = self.backend.remove_file(&path);
        result.is_ok()
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file starting at `start_slot`.
    pub fn journal_path(&self, start_slot: u64) -> PathBuf {
        self.dir
            .join(format!("{JOURNAL_PREFIX}{start_slot:012}{JOURNAL_SUFFIX}"))
    }

    fn snapshot_path(&self, slot: u64) -> PathBuf {
        self.dir
            .join(format!("{SNAP_PREFIX}{slot:012}{SNAP_SUFFIX}"))
    }

    /// Slots of all snapshot files present, ascending.
    pub fn snapshot_slots(&self) -> Vec<u64> {
        self.list_slots(SNAP_PREFIX, SNAP_SUFFIX)
    }

    /// Start slots of all journal files present, ascending.
    pub fn journal_starts(&self) -> Vec<u64> {
        self.list_slots(JOURNAL_PREFIX, JOURNAL_SUFFIX)
    }

    fn list_slots(&self, prefix: &str, suffix: &str) -> Vec<u64> {
        let mut slots: Vec<u64> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                e.file_name()
                    .to_str()?
                    .strip_prefix(prefix)?
                    .strip_suffix(suffix)?
                    .parse()
                    .ok()
            })
            .collect();
        slots.sort_unstable();
        slots
    }

    fn write_snapshot_file(
        &self,
        slot: u64,
        schema_version: u32,
        kind: u8,
        base_slot: u64,
        fields: &SnapFields,
    ) -> io::Result<u64> {
        let payload = encode_snapshot_payload(fields);
        let mut meta = [0u8; SNAP_BIN_HEADER_LEN - 8];
        // Bytes [4..26) of the final file: version, kind, slot, base.
        meta[0] = schema_version.min(u8::MAX as u32) as u8;
        meta[1] = kind;
        meta[2..10].copy_from_slice(&slot.to_le_bytes());
        meta[10..18].copy_from_slice(&base_slot.to_le_bytes());
        meta[18..22].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32_pair(&meta[..18], &payload);
        let tmp = self.dir.join(format!(".tmp-{SNAP_PREFIX}{slot:012}"));
        // One contiguous image, one write op: the whole snapshot is the
        // durability unit, so fault injection (and the device) sees it as
        // a single all-or-nothing append to the tmp file.
        let mut image = Vec::with_capacity(SNAP_BIN_HEADER_LEN + payload.len());
        image.extend_from_slice(SNAP_BIN_MAGIC);
        image.extend_from_slice(&meta);
        image.extend_from_slice(&crc.to_le_bytes());
        image.extend_from_slice(&payload);
        {
            let mut f = self.backend.create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        self.backend
            .rename(&tmp, self.snapshot_path(slot).as_path())?;
        // Persist the rename itself (directory metadata).
        let _ = self.backend.sync_dir(&self.dir);
        Ok(slot)
    }

    /// Write a **full** snapshot atomically: serialise, CRC, write to a
    /// temp file, fsync it, rename into place, fsync the directory. A
    /// crash at any point leaves either the old set of snapshots or the
    /// old set plus a complete new one — never a half-written file under
    /// the real name.
    pub fn write_checkpoint(&self, state: &SessionState) -> io::Result<u64> {
        let fields = encode_state_fields(state);
        self.write_snapshot_file(
            state.slot,
            state.schema_version,
            SNAP_KIND_FULL,
            state.slot,
            &fields,
        )
    }

    /// Load the newest valid snapshot, walking backwards past torn,
    /// corrupt, or future-schema files (a delta whose base full snapshot
    /// is itself missing or corrupt counts as invalid). Returns the state
    /// (if any) and how many snapshots were rejected on the way.
    pub fn load_latest(&self) -> (Option<SessionState>, u64) {
        let mut rejected = 0u64;
        for slot in self.snapshot_slots().into_iter().rev() {
            match self.load_snapshot(slot) {
                Some(state) => return (Some(state), rejected),
                None => rejected += 1,
            }
        }
        (None, rejected)
    }

    fn load_snapshot(&self, slot: u64) -> Option<SessionState> {
        let data = fs::read(self.snapshot_path(slot)).ok()?;
        if data.starts_with(SNAP_MAGIC.as_bytes()) {
            return load_snapshot_json(&data);
        }
        let (kind, base_slot, fields) = parse_snapshot_bin(&data, slot)?;
        let fields = match kind {
            SNAP_KIND_FULL => fields,
            SNAP_KIND_DELTA => {
                // Overlay the delta's fields on its base full snapshot.
                let base_data = fs::read(self.snapshot_path(base_slot)).ok()?;
                let (base_kind, _, mut base) = parse_snapshot_bin(&base_data, base_slot)?;
                if base_kind != SNAP_KIND_FULL {
                    return None; // delta chains are depth 1 by construction
                }
                for (id, bytes) in fields {
                    match base.iter_mut().find(|(i, _)| *i == id) {
                        Some(slot_entry) => slot_entry.1 = bytes,
                        None => base.push((id, bytes)),
                    }
                }
                base
            }
            _ => return None,
        };
        let state = state_from_fields(&fields)?;
        if state.schema_version > crate::SCHEMA_VERSION || state.slot != slot {
            return None;
        }
        Some(state)
    }

    /// Base slot a delta snapshot overlays, `None` for fulls, legacy JSON
    /// snapshots, or anything unreadable. Header peek only — no payload
    /// validation — because pruning must be conservative even around
    /// corrupt files.
    fn snapshot_base(&self, slot: u64) -> Option<u64> {
        let mut head = [0u8; SNAP_BIN_HEADER_LEN];
        let mut f = File::open(self.snapshot_path(slot)).ok()?;
        io::Read::read_exact(&mut f, &mut head).ok()?;
        if &head[..4] != SNAP_BIN_MAGIC || head[5] != SNAP_KIND_DELTA {
            return None;
        }
        Some(u64::from_le_bytes(head[14..22].try_into().ok()?))
    }

    /// Delete all but the newest `keep` snapshots, always also retaining
    /// any full snapshot a kept delta is based on.
    pub fn prune_checkpoints(&self, keep: usize) {
        let slots = self.snapshot_slots();
        let kept: Vec<u64> = slots.iter().rev().take(keep.max(1)).copied().collect();
        let needed: Vec<u64> = kept.iter().filter_map(|&s| self.snapshot_base(s)).collect();
        for &slot in slots.iter().rev().skip(keep.max(1)) {
            if !needed.contains(&slot) {
                let _ = self.backend.remove_file(&self.snapshot_path(slot));
            }
        }
    }

    /// Delete journal files wholly covered by newer ones, given the oldest
    /// slot any retained snapshot still needs replay from. A file covers
    /// `[its start, next file's start)`; it is removable once the next
    /// file starts at or before `oldest_needed`.
    pub fn prune_journals(&self, oldest_needed: u64) {
        let starts = self.journal_starts();
        for pair in starts.windows(2) {
            if pair[1] <= oldest_needed {
                let _ = self.backend.remove_file(&self.journal_path(pair[0]));
            }
        }
    }

    /// Rebuild a session: newest valid snapshot (or a fresh scope when
    /// none exists), then replay every journal entry at or past the
    /// watermark, stopping at corruption or a sequence gap. Never panics;
    /// the worst corruption possible degrades to a cold start.
    pub fn recover(&self, cfg: ScopeConfig, assumed_pci: Option<Pci>) -> (NrScope, RecoveryReport) {
        let (snapshot, rejected) = self.load_latest();
        let snapshot_slot = snapshot.as_ref().map(|s| s.slot);
        let had_journals = !self.journal_starts().is_empty();
        let mut scope = match &snapshot {
            Some(state) => NrScope::from_state(cfg, state),
            None => NrScope::new(cfg, assumed_pci),
        };
        let mut replayed = 0u64;
        let mut discarded = 0u64;
        'files: for start in self.journal_starts() {
            let Ok(data) = fs::read(self.journal_path(start)) else {
                continue;
            };
            let (entries, bad) = read_journal_bytes(&data);
            discarded += bad;
            for e in &entries {
                if e.seq > scope.slot_watermark() {
                    // A sequence gap (a journal file lost between this one
                    // and the watermark): applying ops at the wrong slot
                    // would corrupt state — stop replaying.
                    break 'files;
                }
                if scope.apply_journal_entry(e) {
                    replayed += 1;
                }
            }
        }
        let report = RecoveryReport {
            schema_version: crate::SCHEMA_VERSION,
            resumed: snapshot.is_some() || replayed > 0 || had_journals,
            snapshot_slot,
            corrupt_checkpoints_skipped: rejected,
            replayed_entries: replayed,
            journal_entries_discarded: discarded,
            resumed_slot: scope.slot_watermark(),
            recovered_ues: scope.tracked_rntis().len() as u64,
        };
        (scope, report)
    }
}

/// Parse a binary snapshot's header + payload into its kind, base slot,
/// and raw fields. Validates magic, schema version, expected slot, exact
/// payload length, and the CRC (which covers the header metadata too).
fn parse_snapshot_bin(data: &[u8], expect_slot: u64) -> Option<(u8, u64, SnapFields)> {
    if data.len() < SNAP_BIN_HEADER_LEN || &data[..4] != SNAP_BIN_MAGIC {
        return None;
    }
    let version = data[4] as u32;
    if version > crate::SCHEMA_VERSION {
        return None;
    }
    let kind = *data.get(5)?;
    let slot = read_u64_le(data, 6)?;
    let base_slot = read_u64_le(data, 14)?;
    let payload_len = read_u32_le(data, 22)? as usize;
    let crc = read_u32_le(data, 26)?;
    let payload = data.get(SNAP_BIN_HEADER_LEN..)?;
    if slot != expect_slot || payload.len() != payload_len {
        return None;
    }
    if crc32_pair(&data[4..22], payload) != crc {
        return None;
    }
    Some((kind, base_slot, decode_snapshot_payload(payload)?))
}

/// Legacy `NRSCOPE-SNAP <version> <len> <crc>\n<json>` loader, kept so a
/// session upgraded in place restores from its pre-upgrade checkpoints.
fn load_snapshot_json(data: &[u8]) -> Option<SessionState> {
    let nl = data.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&data[..nl]).ok()?;
    let mut parts = header.split(' ');
    if parts.next() != Some(SNAP_MAGIC) {
        return None;
    }
    let version: u32 = parts.next()?.parse().ok()?;
    if version > crate::SCHEMA_VERSION {
        return None;
    }
    let len = usize::from_str_radix(parts.next()?, 16).ok()?;
    let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
    let payload = &data[nl + 1..];
    if payload.len() != len || crc32(payload) != crc {
        return None;
    }
    let state: SessionState = serde_json::from_str(std::str::from_utf8(payload).ok()?).ok()?;
    if state.schema_version > crate::SCHEMA_VERSION {
        return None;
    }
    Some(state)
}

// ---------------------------------------------------------------------------
// Group-commit journal writer.
// ---------------------------------------------------------------------------

const WRITER_QUEUE_DEPTH: usize = 8;
const BUF_POOL_MAX: usize = 16;

/// How long a batch submit will wait on a full writer queue before giving
/// the batch up and demoting durability. Generous next to the ~2 ms flush
/// latency deadline, tiny next to a real wedge — the slot loop must keep
/// decoding while storage is stuck.
const SUBMIT_GRACE_US: u64 = 5_000;

/// What became of a submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubmitOutcome {
    /// Queued on the writer thread.
    Queued,
    /// Queue full past [`SUBMIT_GRACE_US`]: the writer is wedged or
    /// hopelessly behind. The batch was dropped.
    Full,
    /// The writer thread is gone (died or shut down).
    Gone,
}

/// Everything the writer thread needs to serve one journal file's
/// durability ladder, bundled so [`WriterCmd::Open`] stays readable.
struct WriterCtx {
    path: PathBuf,
    durable: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
    store: SessionStore,
    policy: StoragePolicy,
    rung: Arc<AtomicU64>,
}

enum WriterCmd {
    /// Register a journal file under `id` and open it for append.
    Open {
        id: u64,
        ctx: Box<WriterCtx>,
        ack: SyncSender<bool>,
    },
    /// Encode and append one sealed batch to file `id`. The records
    /// arrive unencoded: serialization is the writer thread's job, so the
    /// capture hot path pays only the move.
    Batch {
        id: u64,
        entries: Vec<JournalEntry>,
        last_seq: u64,
    },
    /// Switch file `id` to a new path. Refused (ack `false`) while the
    /// old file has an unacknowledged write failure or the new file
    /// cannot be opened — the caller keeps the old file and retries.
    Rotate {
        id: u64,
        path: PathBuf,
        ack: SyncSender<bool>,
    },
    /// Ack once every previously queued batch for `id` has been handed to
    /// the OS (`true` iff all of them succeeded since the last rotation).
    Barrier { id: u64, ack: SyncSender<bool> },
    /// While `NonDurable`: test the disk with a probe write, and on
    /// success reopen the journal and climb back to `DurableDegraded`.
    /// Fire-and-forget — the session observes the outcome through the
    /// shared rung atomic.
    Probe { id: u64 },
    /// Chaos injection: sleep in-line on the writer thread for the given
    /// duration, so queued batches back up exactly as they would behind a
    /// blocked disk driver. The submit path's bounded patience must then
    /// demote durability honestly instead of stalling the slot loop.
    Wedge { duration_ms: u64 },
    /// Drain and forget file `id`.
    Close { id: u64, ack: SyncSender<bool> },
}

struct WriterFile {
    file: Box<dyn StorageFile>,
    /// Path currently open (probe recovery reopens it after a fault).
    path: PathBuf,
    /// Bytes known good in `file`: a retry truncates back to this before
    /// rewriting, so a short write can never leave a torn batch followed
    /// by a good one.
    committed_len: u64,
    durable: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
    /// The store owning this journal — the emergency-prune and re-probe
    /// paths act on it (same backend, same fault schedule).
    store: SessionStore,
    policy: StoragePolicy,
    /// Shared durability rung (see [`DurabilityRung`]).
    rung: Arc<AtomicU64>,
    /// First-attempt successes since the last write error; promotes
    /// `DurableDegraded` → `Durable` at [`PROMOTE_CLEAN_BATCHES`].
    clean_streak: u32,
    /// False after a failed batch write; a rotation observed while
    /// unhealthy is refused (the failure is already counted) and the flag
    /// resets so the next attempt can succeed.
    healthy: bool,
}

impl WriterFile {
    fn open(ctx: WriterCtx) -> io::Result<WriterFile> {
        let file = ctx.store.backend().open_append(&ctx.path)?;
        let committed_len = file.file_len().unwrap_or(0);
        Ok(WriterFile {
            file,
            path: ctx.path,
            committed_len,
            durable: ctx.durable,
            metrics: ctx.metrics,
            store: ctx.store,
            policy: ctx.policy,
            rung: ctx.rung,
            clean_streak: 0,
            healthy: true,
        })
    }

    fn rung(&self) -> DurabilityRung {
        DurabilityRung::from_u64(self.rung.load(Relaxed))
    }

    fn set_rung(&self, rung: DurabilityRung) {
        self.rung.store(rung as u64, Relaxed);
        self.metrics.gauge_set(Gauge::DurabilityRung, rung as u64);
    }

    /// Append one encoded batch with the ladder's bounded-retry policy.
    /// Transient errors back off and retry (after truncating any torn
    /// tail); `ENOSPC` gets one emergency prune before its first retry;
    /// exhausted retries demote to `NonDurable` and drop the batch.
    fn append_batch(&mut self, bytes: &[u8], n_records: u64, last_seq: u64) {
        if self.rung() == DurabilityRung::NonDurable {
            // Demoted (e.g. by writer-death detection racing a recovery):
            // the batch is lost and counted; the session stops sending
            // once it observes the rung.
            self.metrics.add(Counter::JournalWriteFailures, n_records);
            return;
        }
        let mut pruned = false;
        let mut attempt = 0u32;
        loop {
            match self.file.write_all(bytes) {
                Ok(()) => {
                    // The batch is in the OS: `kill -9` of this process
                    // can no longer lose it. (Machine-crash durability
                    // would need fsync here — same guarantee level the
                    // old flush-per-slot journal offered.)
                    self.committed_len += bytes.len() as u64;
                    self.durable.store(last_seq + 1, Relaxed);
                    self.metrics.inc(Counter::JournalBatches);
                    if attempt == 0 {
                        self.clean_streak = self.clean_streak.saturating_add(1);
                        if self.clean_streak >= PROMOTE_CLEAN_BATCHES
                            && self.rung() == DurabilityRung::DurableDegraded
                        {
                            self.set_rung(DurabilityRung::Durable);
                        }
                    } else {
                        // Succeeded only on retry: stay degraded, restart
                        // the streak the promotion needs.
                        self.clean_streak = 0;
                    }
                    return;
                }
                Err(e) => {
                    self.clean_streak = 0;
                    if self.rung() == DurabilityRung::Durable {
                        self.set_rung(DurabilityRung::DurableDegraded);
                    }
                    if is_enospc(&e) && !pruned {
                        // Disk full: free what the ladder can spare —
                        // old checkpoints and the journals they cover —
                        // then retry the write into the reclaimed space.
                        pruned = true;
                        self.store
                            .prune_checkpoints(self.policy.emergency_prune_keep);
                        if let Some(&oldest) = self.store.snapshot_slots().first() {
                            self.store.prune_journals(oldest);
                        }
                        self.metrics.inc(Counter::EmergencyPrunes);
                        self.metrics.note("storage_error", e.to_string());
                    }
                    attempt += 1;
                    if attempt > self.policy.storage_retry_max {
                        // Atomic swap: the session (queue-full path) may
                        // have demoted concurrently — one outage is one
                        // demotion, whoever observes it first counts it.
                        let prev = self.rung.swap(DurabilityRung::NonDurable as u64, Relaxed);
                        self.metrics
                            .gauge_set(Gauge::DurabilityRung, DurabilityRung::NonDurable as u64);
                        if prev != DurabilityRung::NonDurable as u64 {
                            self.metrics.inc(Counter::StorageDemotions);
                            self.metrics.note("storage_demotion", e.to_string());
                        }
                        self.metrics.add(Counter::JournalWriteFailures, n_records);
                        self.healthy = false;
                        return;
                    }
                    self.metrics.inc(Counter::StorageRetries);
                    // Cut any torn tail back to the last committed batch
                    // boundary before rewriting (failure tolerated: the
                    // reader discards a torn batch whole anyway).
                    let _ = self.file.truncate(self.committed_len);
                    std::thread::sleep(Duration::from_micros(
                        RETRY_BACKOFF_BASE_US << (attempt - 1).min(4),
                    ));
                }
            }
        }
    }

    /// The `NonDurable` → `DurableDegraded` transition: probe the disk,
    /// and on success reopen the journal path so appends resume.
    fn try_recover(&mut self) {
        if self.rung() != DurabilityRung::NonDurable || !self.store.probe_write() {
            return;
        }
        match self.store.backend().open_append(&self.path) {
            Ok(file) => {
                self.committed_len = file.file_len().unwrap_or(0);
                self.file = file;
                self.healthy = true;
                self.clean_streak = 0;
                self.set_rung(DurabilityRung::DurableDegraded);
            }
            Err(e) => {
                // Probe ok but the journal itself will not reopen: stay
                // demoted and record why.
                self.metrics.note("storage_error", e.to_string());
            }
        }
    }
}

struct WriterShared {
    tx: Mutex<Option<SyncSender<WriterCmd>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
    pool: Arc<Mutex<Vec<Vec<JournalEntry>>>>,
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Drop for WriterShared {
    fn drop(&mut self) {
        lock_clean(&self.tx).take();
        if let Some(h) = lock_clean(&self.handle).take() {
            let _ = h.join();
        }
    }
}

/// Shared group-commit journal writer: one background thread serving any
/// number of journal files (each durable fleet shard registers its own),
/// so N cells cost one writer thread and batched syscalls instead of N
/// flush-per-slot streams. Cloning shares the thread; it exits when the
/// last clone drops.
#[derive(Clone)]
pub struct JournalWriter {
    shared: Arc<WriterShared>,
}

impl JournalWriter {
    /// Start a writer thread with no registered files.
    pub fn spawn() -> JournalWriter {
        let (tx, rx) = sync_channel::<WriterCmd>(WRITER_QUEUE_DEPTH);
        let pool = Arc::new(Mutex::new(Vec::new()));
        let pool_for_thread = Arc::clone(&pool);
        let handle =
            crate::worker::spawn_background("journal", move || writer_loop(rx, pool_for_thread));
        JournalWriter {
            shared: Arc::new(WriterShared {
                tx: Mutex::new(Some(tx)),
                handle: Mutex::new(Some(handle)),
                next_id: AtomicU64::new(1),
                pool,
            }),
        }
    }

    fn send(&self, cmd: WriterCmd) -> bool {
        match lock_clean(&self.shared.tx).as_ref() {
            Some(tx) => tx.send(cmd).is_ok(),
            None => false,
        }
    }

    /// Non-blocking command enqueue: `Full` when the queue is backed up
    /// (a wedged or hopelessly behind writer), `Gone` when the thread has
    /// exited. Returns the command on `Full` so the caller can retry.
    fn try_send(&self, cmd: WriterCmd) -> Result<(), TrySendError<WriterCmd>> {
        match lock_clean(&self.shared.tx).as_ref() {
            Some(tx) => tx.try_send(cmd),
            None => Err(TrySendError::Disconnected(cmd)),
        }
    }

    fn send_acked(&self, make: impl FnOnce(SyncSender<bool>) -> WriterCmd) -> bool {
        let (ack_tx, ack_rx) = sync_channel(1);
        self.send(make(ack_tx)) && ack_rx.recv() == Ok(true)
    }

    /// Register a journal file for append; returns its id.
    fn register(&self, ctx: WriterCtx) -> io::Result<u64> {
        let id = self.shared.next_id.fetch_add(1, Relaxed);
        let path = ctx.path.clone();
        let opened = self.send_acked(|ack| WriterCmd::Open {
            id,
            ctx: Box::new(ctx),
            ack,
        });
        if opened {
            Ok(id)
        } else {
            Err(io::Error::other(format!(
                "journal writer could not open {}",
                path.display()
            )))
        }
    }

    /// Queue one sealed batch (fire and forget — failures are counted by
    /// the writer thread against the file's metrics) with bounded
    /// patience: if the queue stays full past [`SUBMIT_GRACE_US`] the
    /// batch is given up as [`SubmitOutcome::Full`] rather than blocking
    /// the slot loop behind a wedged writer — the liveness contract is
    /// that decode outlives storage, whatever storage is doing.
    fn submit(&self, id: u64, entries: Vec<JournalEntry>, last_seq: u64) -> SubmitOutcome {
        let mut cmd = WriterCmd::Batch {
            id,
            entries,
            last_seq,
        };
        let deadline = Instant::now() + Duration::from_micros(SUBMIT_GRACE_US);
        loop {
            match self.try_send(cmd) {
                Ok(()) => return SubmitOutcome::Queued,
                Err(TrySendError::Disconnected(_)) => return SubmitOutcome::Gone,
                Err(TrySendError::Full(c)) => {
                    if Instant::now() >= deadline {
                        return SubmitOutcome::Full;
                    }
                    cmd = c;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    fn rotate(&self, id: u64, path: PathBuf) -> bool {
        self.send_acked(|ack| WriterCmd::Rotate { id, path, ack })
    }

    fn barrier(&self, id: u64) -> bool {
        self.send_acked(|ack| WriterCmd::Barrier { id, ack })
    }

    /// Queue a disk re-probe for file `id` (fire and forget; the outcome
    /// lands in the shared rung atomic). Non-blocking: while the writer
    /// is wedged with a full queue the probe is simply skipped — the
    /// flap backoff schedules another.
    fn probe(&self, id: u64) -> bool {
        self.try_send(WriterCmd::Probe { id }).is_ok()
    }

    /// Chaos hook: wedge the writer thread for `dur`. It sleeps in-line,
    /// so everything queued behind the wedge backs up exactly like a
    /// blocked disk driver. Returns `false` if the command could not be
    /// enqueued (thread gone or queue already full).
    pub fn inject_wedge(&self, dur: Duration) -> bool {
        self.try_send(WriterCmd::Wedge {
            duration_ms: dur.as_millis() as u64,
        })
        .is_ok()
    }

    fn close(&self, id: u64) -> bool {
        self.send_acked(|ack| WriterCmd::Close { id, ack })
    }

    /// A recycled record buffer, if one is pooled.
    fn pooled_buf(&self) -> Vec<JournalEntry> {
        lock_clean(&self.shared.pool).pop().unwrap_or_default()
    }
}

fn writer_loop(rx: Receiver<WriterCmd>, pool: Arc<Mutex<Vec<Vec<JournalEntry>>>>) {
    let mut files: HashMap<u64, WriterFile> = HashMap::new();
    // Scratch encode buffer, reused across batches: it grows once to the
    // steady-state batch size and never reallocates after.
    let mut scratch: Vec<u8> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WriterCmd::Open { id, ctx, ack } => {
                let ok = match WriterFile::open(*ctx) {
                    Ok(f) => {
                        files.insert(id, f);
                        true
                    }
                    Err(_) => false,
                };
                let _ = ack.send(ok);
            }
            WriterCmd::Batch {
                id,
                mut entries,
                last_seq,
            } => {
                if let Some(f) = files.get_mut(&id) {
                    encode_batch_into(&mut scratch, &entries);
                    f.append_batch(&scratch, entries.len() as u64, last_seq);
                }
                entries.clear();
                let mut p = lock_clean(&pool);
                if p.len() < BUF_POOL_MAX {
                    p.push(entries);
                }
            }
            WriterCmd::Rotate { id, path, ack } => {
                let ok = match files.get_mut(&id) {
                    Some(f) => {
                        // Everything queued before this command has been
                        // written (in-order channel); refuse the switch if
                        // any of it failed so the caller retries instead
                        // of silently abandoning the old file's tail.
                        let was_healthy = f.healthy;
                        f.healthy = true;
                        was_healthy
                            && match f.store.backend().open_append(&path) {
                                Ok(new_file) => {
                                    f.committed_len = new_file.file_len().unwrap_or(0);
                                    f.file = new_file;
                                    f.path = path;
                                    true
                                }
                                Err(_) => false,
                            }
                    }
                    None => false,
                };
                let _ = ack.send(ok);
            }
            WriterCmd::Barrier { id, ack } => {
                let _ = ack.send(files.get(&id).is_some_and(|f| f.healthy));
            }
            WriterCmd::Probe { id } => {
                if let Some(f) = files.get_mut(&id) {
                    f.try_recover();
                }
            }
            WriterCmd::Wedge { duration_ms } => {
                std::thread::sleep(Duration::from_millis(duration_ms));
            }
            WriterCmd::Close { id, ack } => {
                files.remove(&id);
                let _ = ack.send(true);
            }
        }
    }
}

/// The hot-path half of group commit: the records of the batch being
/// built. Nothing is serialized here — records are moved in as-is and the
/// writer thread encodes them, so the per-slot cost is a `Vec` push.
struct BatchBuf {
    entries: Vec<JournalEntry>,
    started: Option<Instant>,
}

impl BatchBuf {
    fn new() -> BatchBuf {
        BatchBuf {
            entries: Vec::new(),
            started: None,
        }
    }

    fn reset(&mut self, mut entries: Vec<JournalEntry>) {
        entries.clear();
        self.entries = entries;
        self.started = None;
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    fn push_record(&mut self, seq: u64, dropped: bool, ops: Vec<SlotOp>) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        self.entries.push(JournalEntry {
            seq,
            dropped,
            ops,
            micro: None,
        });
    }

    fn age_us(&self) -> u64 {
        self.started
            .map(|t| t.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// Attach `micro` to the final record — the batch's replay re-anchor —
    /// and take the records. The buffer is left empty; call
    /// [`BatchBuf::reset`].
    fn seal(&mut self, micro: MicroState) -> (Vec<JournalEntry>, u64) {
        let last = self.entries.last_mut().expect("seal of a non-empty batch");
        last.micro = Some(micro);
        let last_seq = last.seq;
        self.started = None;
        (std::mem::take(&mut self.entries), last_seq)
    }
}

/// Background checkpoint writer: a single worker thread fed through a
/// depth-1 channel. The hot path hands over a frozen [`SessionState`] and
/// returns immediately; if the previous write is still in flight the
/// request is skipped (and counted) rather than queued — a fresher
/// snapshot is always coming. The thread delta-encodes: a full snapshot
/// every `full_every` writes, intermediate ones storing only the fields
/// whose encoding changed since the last full.
struct CheckpointWriter {
    tx: Option<SyncSender<SessionState>>,
    handle: Option<JoinHandle<()>>,
    last_written: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
}

impl CheckpointWriter {
    fn spawn(
        store: SessionStore,
        keep: usize,
        full_every: u64,
        metrics: Arc<Metrics>,
    ) -> CheckpointWriter {
        let (tx, rx) = sync_channel::<SessionState>(1);
        let last_written = Arc::new(AtomicU64::new(0));
        let last = Arc::clone(&last_written);
        let m = Arc::clone(&metrics);
        let handle = crate::worker::spawn_background("checkpoint", move || {
            // (base slot, base field encodings) of the last full snapshot.
            let mut full_base: Option<(u64, SnapFields)> = None;
            let mut since_full = 0u64;
            while let Ok(state) = rx.recv() {
                let fields = encode_state_fields(&state);
                let write_full = match &full_base {
                    None => true,
                    Some(_) => since_full + 1 >= full_every.max(1),
                };
                let result = if write_full {
                    store.write_snapshot_file(
                        state.slot,
                        state.schema_version,
                        SNAP_KIND_FULL,
                        state.slot,
                        &fields,
                    )
                } else {
                    let (base_slot, base_fields) = full_base.as_ref().unwrap();
                    let delta: SnapFields = fields
                        .iter()
                        .filter(|(id, bytes)| {
                            base_fields
                                .iter()
                                .find(|(bid, _)| bid == id)
                                .is_none_or(|(_, bb)| bb != bytes)
                        })
                        .cloned()
                        .collect();
                    store
                        .write_snapshot_file(
                            state.slot,
                            state.schema_version,
                            SNAP_KIND_DELTA,
                            *base_slot,
                            &delta,
                        )
                        .inspect(|_| m.inc(Counter::SnapshotDeltasWritten))
                };
                match result {
                    Ok(slot) => {
                        if write_full {
                            full_base = Some((state.slot, fields));
                            since_full = 0;
                        } else {
                            since_full += 1;
                        }
                        last.store(slot, Relaxed);
                        m.inc(Counter::CheckpointsWritten);
                        store.prune_checkpoints(keep);
                        if let Some(&oldest) = store.snapshot_slots().first() {
                            store.prune_journals(oldest);
                        }
                    }
                    Err(e) => {
                        // A failed write is not a busy-skip: count it
                        // separately and record *why* so the summary can
                        // show the reason, not just a tally.
                        m.inc(Counter::CheckpointFailures);
                        m.note("checkpoint_error", e.to_string());
                    }
                }
            }
        });
        CheckpointWriter {
            tx: Some(tx),
            handle: Some(handle),
            last_written,
            metrics,
        }
    }

    /// Offer a snapshot; returns immediately. Skipped (and counted) when
    /// the writer is still busy with the previous one.
    fn try_submit(&self, state: SessionState) {
        if let Some(tx) = &self.tx {
            match tx.try_send(state) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.metrics.inc(Counter::CheckpointsSkipped);
                }
            }
        }
    }

    /// Newest slot durably checkpointed by the background thread.
    fn last_written(&self) -> u64 {
        self.last_written.load(Relaxed)
    }

    /// Drain and join the writer.
    fn shutdown(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Persistence knobs.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Session directory (checkpoints + journals).
    pub dir: PathBuf,
    /// Snapshot cadence in slots (512 ≈ every 0.25 s at µ=1).
    pub checkpoint_every_slots: u64,
    /// Snapshots retained (≥ 1; the previous one is the fallback when the
    /// newest turns out torn).
    pub keep_checkpoints: usize,
    /// Group-commit batch size: seal and hand the batch to the writer
    /// thread after this many slots. Together with the queued-batch depth
    /// this bounds the `kill -9` loss window (see DESIGN.md).
    pub flush_max_slots: u64,
    /// Seal the batch once its oldest record is this old, even if it is
    /// not full — bounds durability lag on a quiet cell.
    pub flush_max_latency_us: u64,
    /// Delta-snapshot cadence: every K-th background checkpoint is a full
    /// image, the rest store only fields changed since the last full.
    /// `1` disables deltas.
    pub full_snapshot_every: u64,
    /// Storage-fault policy: retry budget, re-probe cadence, emergency
    /// prune depth (the durability degradation ladder).
    pub storage: StoragePolicy,
    /// Backend every mutating file operation goes through. The real
    /// filesystem by default; tests and the `durafault` bench swap in a
    /// [`FaultyBackend`].
    pub backend: Arc<dyn StorageBackend>,
}

impl PersistConfig {
    /// Defaults: checkpoint every 512 slots, keep 2, batch 64 slots with
    /// a 2 ms latency ceiling, full snapshot every 8th checkpoint.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            checkpoint_every_slots: 512,
            keep_checkpoints: 2,
            flush_max_slots: 128,
            flush_max_latency_us: 2000,
            full_snapshot_every: 8,
            storage: StoragePolicy::default(),
            backend: Arc::new(RealBackend),
        }
    }

    /// Swap the storage backend (builder style).
    pub fn with_backend(mut self, backend: Arc<dyn StorageBackend>) -> PersistConfig {
        self.backend = backend;
        self
    }

    /// Upper bound on slots a `kill -9` can lose: the batch being built,
    /// every batch that may sit in the writer queue, and the one the
    /// writer may have dequeued but not yet written.
    pub fn loss_window_slots(&self) -> u64 {
        self.flush_max_slots.max(1) * (WRITER_QUEUE_DEPTH as u64 + 2)
    }
}

/// An [`NrScope`] wrapped with durability: every processed capture lands
/// in a group-commit journal batch, snapshots stream from a background
/// writer, and [`PersistentSession::open`] warm-restarts from whatever
/// survived the last crash.
pub struct PersistentSession {
    scope: NrScope,
    store: SessionStore,
    cfg: PersistConfig,
    writer: JournalWriter,
    /// This session's journal file id within the (possibly shared) writer.
    file_id: u64,
    /// Watermark up to which the journal is in the OS (exclusive).
    durable: Arc<AtomicU64>,
    batch: BatchBuf,
    /// Start slot of the journal file currently being appended.
    journal_start: u64,
    /// Watermark at which the checkpoint cadence last fired. Cadence
    /// triggers on `watermark - last >= cadence`, not divisibility, so a
    /// gap-fill resume that jumps the watermark past a multiple cannot
    /// silently skip a checkpoint.
    last_checkpoint_slot: u64,
    ckpt: CheckpointWriter,
    /// Shared durability rung (written by the writer thread's ladder,
    /// observed here once per slot).
    rung: Arc<AtomicU64>,
    /// True while `NonDurable` has been observed: journaling is paused
    /// (slot ops are not even collected) and probes are being scheduled.
    journaling_paused: bool,
    /// Watermark at which the next re-probe fires while paused.
    next_probe_at: u64,
    /// Probe flap-backoff exponent (`reprobe_interval_slots << exp`,
    /// capped at [`MAX_PROBE_FLAP_EXP`]); resets once fully `Durable`.
    probe_flap_exp: u32,
    finalized: bool,
}

impl PersistentSession {
    /// Open (or resume) a durable session in `cfg.dir` with its own
    /// dedicated journal-writer thread. Recovery is part of opening: the
    /// returned report says what was restored.
    pub fn open(
        cfg: PersistConfig,
        scope_cfg: ScopeConfig,
        assumed_pci: Option<Pci>,
    ) -> io::Result<(PersistentSession, RecoveryReport)> {
        Self::open_with_writer(cfg, scope_cfg, assumed_pci, &JournalWriter::spawn())
    }

    /// Open (or resume) a durable session whose journal batches go
    /// through `writer` — the fleet path, where every shard shares one
    /// group-commit thread.
    pub fn open_with_writer(
        cfg: PersistConfig,
        scope_cfg: ScopeConfig,
        assumed_pci: Option<Pci>,
        writer: &JournalWriter,
    ) -> io::Result<(PersistentSession, RecoveryReport)> {
        let store = SessionStore::with_backend(&cfg.dir, Arc::clone(&cfg.backend))?;
        let (mut scope, report) = store.recover(scope_cfg, assumed_pci);
        scope.start_journaling();
        let journal_start = scope.slot_watermark();
        let durable = Arc::new(AtomicU64::new(journal_start));
        let rung = Arc::new(AtomicU64::new(DurabilityRung::Durable as u64));
        // Append mode: re-opening after a crash-before-rotation continues
        // the same file (the reader tolerates a torn final batch, and
        // sniffs per record, so binary batches may follow a legacy JSONL
        // tail in the same file).
        let file_id = writer.register(WriterCtx {
            path: store.journal_path(journal_start),
            durable: Arc::clone(&durable),
            metrics: Arc::clone(scope.metrics()),
            store: store.clone(),
            policy: cfg.storage,
            rung: Arc::clone(&rung),
        })?;
        let ckpt = CheckpointWriter::spawn(
            store.clone(),
            cfg.keep_checkpoints,
            cfg.full_snapshot_every,
            Arc::clone(scope.metrics()),
        );
        Ok((
            PersistentSession {
                scope,
                store,
                last_checkpoint_slot: journal_start,
                cfg,
                writer: writer.clone(),
                file_id,
                durable,
                batch: BatchBuf::new(),
                journal_start,
                ckpt,
                rung,
                journaling_paused: false,
                next_probe_at: 0,
                probe_flap_exp: 0,
                finalized: false,
            },
            report,
        ))
    }

    /// The wrapped scope.
    pub fn scope(&self) -> &NrScope {
        &self.scope
    }

    /// Mutable access to the wrapped scope.
    pub fn scope_mut(&mut self) -> &mut NrScope {
        &mut self.scope
    }

    /// The session store (tests inspect the directory through this).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Watermark up to which the journal has been handed to the OS
    /// (exclusive): slots below this survive `kill -9`. The gap up to
    /// [`NrScope::slot_watermark`] is the live loss window, bounded by
    /// [`PersistConfig::loss_window_slots`].
    pub fn durable_watermark(&self) -> u64 {
        self.durable.load(Relaxed)
    }

    /// Current rung of the durability ladder.
    pub fn durability_rung(&self) -> DurabilityRung {
        DurabilityRung::from_u64(self.rung.load(Relaxed))
    }

    /// The loss window this session honestly promises right now:
    /// `Some(bound)` while the journal is healthy (`kill -9` loses at
    /// most that many slots), `None` — **unbounded** — while
    /// `NonDurable` (nothing has been journalled since the demotion, so
    /// a crash loses everything back to the last durable watermark).
    pub fn reported_loss_window(&self) -> Option<u64> {
        match self.durability_rung() {
            DurabilityRung::NonDurable => None,
            _ => Some(self.cfg.loss_window_slots()),
        }
    }

    /// Seal the in-flight batch (attaching the current end-of-slot
    /// continuous state to its final record) and queue it on the writer.
    fn submit_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let records = self.batch.len();
        let (entries, last_seq) = self.batch.seal(self.scope.micro_state());
        match self.writer.submit(self.file_id, entries, last_seq) {
            SubmitOutcome::Queued => {}
            // Writer gone (died or shut down under us) or unresponsive
            // past the submit grace (wedged thread, queue full): the
            // records are lost and nothing is draining — that is a
            // storage demotion, not just a counter bump.
            // `service_durability` observes the rung next slot, pauses
            // journaling, schedules probes, and keeps decoding; when a
            // mere wedge ends, a probe re-promotes and the session
            // re-anchors with a fresh checkpoint.
            outcome => {
                self.scope
                    .metrics()
                    .add(Counter::JournalWriteFailures, records);
                // Atomic swap: the writer thread's retry-exhaustion path
                // may demote concurrently (a dead disk backs the queue up
                // while it burns retries) — one outage is one demotion,
                // whoever observes it first counts it.
                let prev = self.rung.swap(DurabilityRung::NonDurable as u64, Relaxed);
                self.scope
                    .metrics()
                    .gauge_set(Gauge::DurabilityRung, DurabilityRung::NonDurable as u64);
                if prev != DurabilityRung::NonDurable as u64 {
                    self.scope.metrics().inc(Counter::StorageDemotions);
                    let why = match outcome {
                        SubmitOutcome::Full => {
                            "journal writer unresponsive (queue full past grace)"
                        }
                        _ => "journal writer thread gone",
                    };
                    self.scope.metrics().note("storage_demotion", why);
                }
            }
        }
        let recycled = self.writer.pooled_buf();
        self.batch.reset(recycled);
    }

    /// Chaos hook
    /// ([`HangTarget::JournalWriter`](crate::chaos::HangTarget)): wedge
    /// this session's journal-writer thread for `dur`. Decode continues;
    /// batches back up behind the wedge, and once the submit grace runs
    /// out the ladder demotes honestly ([`DurabilityRung::NonDurable`],
    /// loss window reported unbounded) until a post-wedge probe
    /// re-promotes and the session re-anchors on a fresh checkpoint.
    pub fn inject_writer_wedge(&mut self, dur: Duration) {
        self.scope.metrics().note(
            "chaos",
            format!("journal writer wedged for {} ms", dur.as_millis()),
        );
        self.writer.inject_wedge(dur);
    }

    /// Seal and drain the in-flight batch, returning once the writer has
    /// handed everything queued so far to the OS (`true` iff every batch
    /// since the last rotation succeeded). A durability barrier for
    /// tests, benches, and shutdown paths — the hot path never calls it.
    pub fn flush_barrier(&mut self) -> bool {
        self.submit_batch();
        self.writer.barrier(self.file_id)
    }

    /// Observe the durability ladder once per slot: pause journaling on
    /// demotion to `NonDurable` (decode must outlive the disk), schedule
    /// flap-backoff re-probes while down, and re-anchor + resume once the
    /// writer's probe recovered the disk.
    fn service_durability(&mut self) {
        let watermark = self.scope.slot_watermark();
        match self.durability_rung() {
            DurabilityRung::NonDurable => {
                if !self.journaling_paused {
                    // First observation of the demotion. The in-flight
                    // batch can never drain — count it lost, stop
                    // collecting slot ops, start probing.
                    let lost = self.batch.len();
                    if lost > 0 {
                        self.scope
                            .metrics()
                            .add(Counter::JournalWriteFailures, lost);
                        self.batch.reset(Vec::new());
                    }
                    self.scope.pause_journaling();
                    self.journaling_paused = true;
                    self.next_probe_at = watermark + self.cfg.storage.reprobe_interval_slots.max(1);
                } else if watermark >= self.next_probe_at {
                    self.writer.probe(self.file_id);
                    // Governor-style flap backoff: each unanswered probe
                    // doubles the wait, so a dead disk costs a bounded,
                    // shrinking fraction of writer-thread time.
                    self.probe_flap_exp = (self.probe_flap_exp + 1).min(MAX_PROBE_FLAP_EXP);
                    self.next_probe_at = watermark
                        + (self.cfg.storage.reprobe_interval_slots.max(1) << self.probe_flap_exp);
                }
            }
            rung => {
                if self.journaling_paused {
                    // The writer's probe re-promoted us. Everything since
                    // the demotion was never journalled: re-anchor with a
                    // synchronous checkpoint at the current watermark so
                    // the loss window is bounded again *from here*, then
                    // resume collecting slot ops.
                    self.journaling_paused = false;
                    self.scope.resume_journaling();
                    match self.checkpoint_now() {
                        Ok(slot) => {
                            // State ≤ `slot` is durable via the snapshot;
                            // align the journal and the durable watermark
                            // with it.
                            if self
                                .writer
                                .rotate(self.file_id, self.store.journal_path(slot))
                            {
                                self.journal_start = slot;
                            }
                            self.durable.fetch_max(slot, Relaxed);
                        }
                        Err(_) => {
                            // Disk flapped straight back down: re-demote
                            // and keep probing (backoff still rising).
                            self.rung.store(DurabilityRung::NonDurable as u64, Relaxed);
                            self.scope.metrics().gauge_set(
                                Gauge::DurabilityRung,
                                DurabilityRung::NonDurable as u64,
                            );
                            self.scope.metrics().inc(Counter::StorageDemotions);
                            self.scope.pause_journaling();
                            self.journaling_paused = true;
                            self.next_probe_at = watermark
                                + (self.cfg.storage.reprobe_interval_slots.max(1)
                                    << self.probe_flap_exp);
                        }
                    }
                } else if rung == DurabilityRung::Durable {
                    // Fully healthy again: the next outage starts its
                    // probe backoff from scratch.
                    self.probe_flap_exp = 0;
                }
            }
        }
    }

    /// Process one capture durably: decode, append the slot to the
    /// group-commit batch (sealed to the writer thread on buffer-full or
    /// latency deadline), and kick the checkpoint cadence. Journal write
    /// failures are counted in metrics, never raised — losing durability
    /// must not stop capture.
    pub fn process_capture(&mut self, cap: &crate::observe::Capture) -> Vec<TelemetryRecord> {
        let records = self.scope.process_capture(cap);
        self.service_durability();
        if let Some((seq, dropped, ops)) = self.scope.take_slot_ops() {
            self.batch.push_record(seq, dropped, ops);
            let full = self.batch.len() >= self.cfg.flush_max_slots.max(1);
            if full || self.batch.age_us() >= self.cfg.flush_max_latency_us {
                self.submit_batch();
            }
        }
        let watermark = self.scope.slot_watermark();
        if !self.journaling_paused
            && watermark.saturating_sub(self.last_checkpoint_slot)
                >= self.cfg.checkpoint_every_slots
        {
            self.last_checkpoint_slot = watermark;
            self.ckpt.try_submit(self.scope.session_state());
        }
        // Once a checkpoint newer than this journal file's start is
        // durable, rotate: replay will start from that snapshot, so new
        // entries belong in a file aligned with it and older files become
        // prunable. The in-flight batch holds records *below* the rotation
        // point, so it is sealed into the old file first (a barrier); the
        // writer refuses the switch if any of the old file's batches
        // failed, in which case we keep the old file and retry on a later
        // slot — rotation must never abandon an unflushed tail.
        if !self.journaling_paused && self.ckpt.last_written() > self.journal_start {
            self.submit_batch();
            if self
                .writer
                .rotate(self.file_id, self.store.journal_path(watermark))
            {
                self.journal_start = watermark;
            }
        }
        records
    }

    /// Write a checkpoint synchronously (shutdown path — unlike the
    /// cadence writes, the caller wants it durable before returning).
    /// Acts as a group-commit barrier: the in-flight batch is sealed and
    /// drained first.
    pub fn checkpoint_now(&mut self) -> io::Result<u64> {
        self.submit_batch();
        self.writer.barrier(self.file_id);
        let slot = self.store.write_checkpoint(&self.scope.session_state())?;
        self.last_checkpoint_slot = slot;
        self.store.prune_checkpoints(self.cfg.keep_checkpoints);
        if let Some(&oldest) = self.store.snapshot_slots().first() {
            self.store.prune_journals(oldest);
        }
        Ok(slot)
    }

    /// Clean shutdown: drain the journal through a barrier, write a final
    /// full checkpoint, stop the background writers.
    pub fn finalize(mut self) -> io::Result<u64> {
        let slot = self.checkpoint_now()?;
        self.writer.close(self.file_id);
        self.ckpt.shutdown();
        self.finalized = true;
        Ok(slot)
    }
}

impl Drop for PersistentSession {
    fn drop(&mut self) {
        if self.finalized {
            return;
        }
        // Orderly teardown without finalize (a dropped session) still
        // drains the tail: seal the in-flight batch and wait for the
        // writer to hand everything to the OS, so an in-process "crash"
        // loses nothing — matching the old flush-per-slot teardown. Only
        // an actual `kill -9` pays the bounded loss window.
        self.submit_batch();
        self.writer.close(self.file_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("nrscope-persist-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_pair(b"12345", b"6789"), 0xCBF4_3926);
    }

    /// The hand-rolled hot-path encoder must stay byte-for-byte identical
    /// to the derived serialization it shortcuts — old journals decode
    /// through the generic path, so any divergence is silent corruption.
    #[test]
    fn direct_slot_op_encoding_matches_derived() {
        use nr_phy::dci::DciFormat;
        use nr_phy::pdcch::AggregationLevel;
        use nr_phy::types::RntiType;

        let mut ops = Vec::new();
        for (i, (rt, fmt, lvl)) in [
            (RntiType::C, DciFormat::Dl1_1, AggregationLevel::L1),
            (RntiType::Tc, DciFormat::Ul0_1, AggregationLevel::L2),
            (RntiType::Ra, DciFormat::Dl1_1, AggregationLevel::L4),
            (RntiType::Si, DciFormat::Ul0_1, AggregationLevel::L8),
            (RntiType::P, DciFormat::Dl1_1, AggregationLevel::L16),
        ]
        .into_iter()
        .enumerate()
        {
            ops.push(SlotOp::Record(TelemetryRecord {
                schema_version: crate::SCHEMA_VERSION,
                slot: 1_000_000 + i as u64,
                sfn: 512 + i as u32,
                rnti: Rnti(0x4601 + i as u16),
                rnti_type: rt,
                format: fmt,
                level: lvl,
                cce_start: 3 * i,
                prb_start: 7 * i,
                prb_len: 24,
                symbol_start: 1,
                symbol_len: 13,
                mcs: 17,
                ndi: (i % 2) as u8,
                rv: 2,
                harq_id: i as u8,
                layers: 2,
                tbs: 48_384 + i as u32,
                is_retx: i % 2 == 1,
            }));
        }
        ops.push(SlotOp::Expire { rnti: Rnti(0x4601) });
        for op in &ops {
            let mut direct = Vec::new();
            put_slot_op(&mut direct, op);
            let derived = binfmt::encode_value(op);
            assert_eq!(direct, derived, "encoding diverged for {op:?}");
        }
    }

    fn dummy_micro() -> MicroState {
        MicroState {
            cell: CellKnowledge::default(),
            sync: SyncState::Synced,
            unhealthy_streak: 0,
            last_pci: None,
            stats: ScopeStats::default(),
            governor: OverloadGovernor::new(crate::governor::GovernorConfig::default()),
            tracker_aux: TrackerAux::default(),
            clock: None,
        }
    }

    fn dummy_entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            dropped: false,
            ops: Vec::new(),
            micro: Some(dummy_micro()),
        }
    }

    #[test]
    fn journal_round_trip() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            append_journal_entry(&mut buf, &dummy_entry(seq)).unwrap();
        }
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 5);
        assert_eq!(discarded, 0);
        assert_eq!(entries[4].seq, 4);
    }

    #[test]
    fn binary_batch_round_trip() {
        let entries: Vec<JournalEntry> = (0..5)
            .map(|seq| JournalEntry {
                micro: (seq == 4).then(dummy_micro),
                ..dummy_entry(seq)
            })
            .collect();
        let batch = encode_batch(&entries);
        let (out, discarded) = read_journal_bytes(&batch);
        assert_eq!(out.len(), 5);
        assert_eq!(discarded, 0);
        assert!(out[..4].iter().all(|e| e.micro.is_none()));
        assert!(out[4].micro.is_some(), "trailer micro survives");
    }

    #[test]
    fn mixed_jsonl_then_binary_replays_end_to_end() {
        // A session upgraded in place: JSONL records 0..3, then binary
        // batches appended to the same file.
        let mut buf = Vec::new();
        for seq in 0..3 {
            append_journal_entry(&mut buf, &dummy_entry(seq)).unwrap();
        }
        buf.extend_from_slice(&encode_batch(&[dummy_entry(3), dummy_entry(4)]));
        buf.extend_from_slice(&encode_batch(&[dummy_entry(5)]));
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 6);
        assert_eq!(discarded, 0);
        assert_eq!(entries.last().unwrap().seq, 5);
    }

    #[test]
    fn truncated_tail_recovers_valid_prefix() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            append_journal_entry(&mut buf, &dummy_entry(seq)).unwrap();
        }
        // Tear the file mid-way through the final record.
        buf.truncate(buf.len() - 10);
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 4);
        assert!(discarded >= 1);
    }

    #[test]
    fn torn_binary_batch_is_discarded_whole() {
        let mut buf = encode_batch(&[dummy_entry(0), dummy_entry(1)]);
        let good_len = buf.len();
        buf.extend_from_slice(&encode_batch(&[dummy_entry(2), dummy_entry(3)]));
        for cut in [
            good_len + 3,                    // torn batch header
            good_len + BATCH_HEADER_LEN + 4, // torn record mid-batch
            buf.len() - 1,                   // one byte short of complete
        ] {
            let (entries, discarded) = read_journal_bytes(&buf[..cut]);
            assert_eq!(entries.len(), 2, "cut at {cut}: whole torn batch dropped");
            assert!(discarded >= 1);
        }
    }

    #[test]
    fn flipped_crc_byte_stops_replay_at_the_bad_record() {
        let mut good = Vec::new();
        append_journal_entry(&mut good, &dummy_entry(0)).unwrap();
        let record_len = good.len();
        for seq in 1..4 {
            append_journal_entry(&mut good, &dummy_entry(seq)).unwrap();
        }
        // Flip a payload byte of record 1 (past its header).
        let mut bad = good.clone();
        bad[record_len + 30] ^= 0x01;
        let (entries, discarded) = read_journal_bytes(&bad);
        assert_eq!(entries.len(), 1, "replay stops before the corrupt record");
        assert!(discarded >= 1);
    }

    #[test]
    fn flipped_batch_payload_byte_discards_that_batch() {
        let mut buf = encode_batch(&[dummy_entry(0), dummy_entry(1)]);
        let good_len = buf.len();
        buf.extend_from_slice(&encode_batch(&[dummy_entry(2)]));
        buf[good_len + BATCH_HEADER_LEN + 2] ^= 0x40;
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 2, "CRC catches the flip, batch discarded");
        assert!(discarded >= 1);
    }

    #[test]
    fn future_batch_version_stops_replay() {
        let mut buf = encode_batch(&[dummy_entry(0)]);
        let good_len = buf.len();
        buf.extend_from_slice(&encode_batch(&[dummy_entry(1)]));
        buf[good_len + 4] = BATCH_VERSION + 1;
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 1);
        assert!(discarded >= 1);
    }

    #[test]
    fn zero_length_record_is_rejected() {
        let mut buf = Vec::new();
        append_journal_entry(&mut buf, &dummy_entry(0)).unwrap();
        buf.extend_from_slice(format!("J1 {:08x} {:08x} \n", 0, crc32(b"")).as_bytes());
        append_journal_entry(&mut buf, &dummy_entry(1)).unwrap();
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 1);
        assert!(discarded >= 1, "everything after the bad record distrusted");
    }

    #[test]
    fn non_monotonic_sequence_is_rejected() {
        let mut buf = Vec::new();
        append_journal_entry(&mut buf, &dummy_entry(3)).unwrap();
        append_journal_entry(&mut buf, &dummy_entry(3)).unwrap();
        let (entries, _) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 1);
        // And across a format boundary: a binary batch repeating the
        // JSONL tail's sequence is rejected too.
        let mut mixed = Vec::new();
        append_journal_entry(&mut mixed, &dummy_entry(3)).unwrap();
        mixed.extend_from_slice(&encode_batch(&[dummy_entry(3)]));
        let (entries, discarded) = read_journal_bytes(&mixed);
        assert_eq!(entries.len(), 1);
        assert!(discarded >= 1);
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_checkpoint() {
        let dir = tmp_dir("torn-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(1)));
        let mut state = scope.session_state();
        state.slot = 100;
        store.write_checkpoint(&state).unwrap();
        state.slot = 200;
        store.write_checkpoint(&state).unwrap();
        // Tear the newest snapshot (as an interrupted write would).
        let newest = store.snapshot_slots().last().copied().unwrap();
        assert_eq!(newest, 200);
        let path = dir.join("ckpt-000000000200.snap");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() / 2]).unwrap();
        let (loaded, rejected) = store.load_latest();
        assert_eq!(loaded.unwrap().slot, 100, "fell back to previous");
        assert_eq!(rejected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_json_snapshot_still_loads() {
        let dir = tmp_dir("legacy-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(7)));
        let mut state = scope.session_state();
        state.slot = 300;
        // Write the pre-upgrade JSON format by hand.
        let json = serde_json::to_string(&state).unwrap();
        let header = format!(
            "{SNAP_MAGIC} {} {:08x} {:08x}\n",
            state.schema_version,
            json.len(),
            crc32(json.as_bytes())
        );
        fs::write(
            store.snapshot_path(300),
            [header.as_bytes(), json.as_bytes()].concat(),
        )
        .unwrap();
        let (loaded, rejected) = store.load_latest();
        assert_eq!(loaded.unwrap().slot, 300);
        assert_eq!(rejected, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_snapshot_round_trips_and_keeps_its_base() {
        let dir = tmp_dir("delta-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(5)));
        let mut state = scope.session_state();
        state.slot = 100;
        let base_fields = encode_state_fields(&state);
        store
            .write_snapshot_file(100, state.schema_version, SNAP_KIND_FULL, 100, &base_fields)
            .unwrap();
        // A later state differing in slot + a counter.
        state.slot = 150;
        state.unhealthy_streak = 9;
        let fields = encode_state_fields(&state);
        let delta: SnapFields = fields
            .iter()
            .filter(|(id, bytes)| {
                base_fields
                    .iter()
                    .find(|(bid, _)| bid == id)
                    .is_none_or(|(_, bb)| bb != bytes)
            })
            .cloned()
            .collect();
        assert!(delta.len() < SNAP_FIELDS, "delta smaller than a full image");
        store
            .write_snapshot_file(150, state.schema_version, SNAP_KIND_DELTA, 100, &delta)
            .unwrap();
        let (loaded, rejected) = store.load_latest();
        let loaded = loaded.unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(loaded.slot, 150);
        assert_eq!(loaded.unhealthy_streak, 9);
        // Pruning to 1 keeps the delta AND the full it needs.
        store.prune_checkpoints(1);
        assert_eq!(store.snapshot_slots(), vec![100, 150]);
        // A delta whose base is destroyed is rejected, falling back cleanly.
        fs::remove_file(store.snapshot_path(100)).unwrap();
        let (loaded, rejected) = store.load_latest();
        assert!(loaded.is_none());
        assert_eq!(rejected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_schema_snapshot_is_rejected() {
        let dir = tmp_dir("future-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(1)));
        let mut state = scope.session_state();
        state.slot = 100;
        state.schema_version = crate::SCHEMA_VERSION + 1;
        store.write_checkpoint(&state).unwrap();
        let (loaded, rejected) = store.load_latest();
        assert!(loaded.is_none());
        assert_eq!(rejected, 1);
        // Recovery degrades to a cold start instead of loading it.
        let (recovered, report) = store.recover(ScopeConfig::default(), Some(Pci(1)));
        assert_eq!(recovered.slot_watermark(), 0);
        assert_eq!(report.corrupt_checkpoints_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Untrusted-input regression: every truncated prefix of a valid
    /// binary batch and binary snapshot must parse (to rejection) without
    /// panicking — the raw `try_into().unwrap()` reads these decoders
    /// used to do would abort on exactly these inputs.
    #[test]
    fn truncated_batch_and_snapshot_prefixes_never_panic() {
        let entries: Vec<JournalEntry> = (0..3).map(dummy_entry).collect();
        let batch = encode_batch(&entries);
        for cut in 0..batch.len() {
            let prefix = &batch[..cut];
            let _ = parse_batch(prefix, None);
            let (parsed, _) = read_journal_bytes(prefix);
            assert!(parsed.is_empty(), "prefix of len {cut} yielded entries");
        }

        let dir = tmp_dir("snap-prefix");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(3)));
        let mut state = scope.session_state();
        state.slot = 42;
        store
            .write_snapshot_file(
                42,
                state.schema_version,
                SNAP_KIND_FULL,
                42,
                &encode_state_fields(&state),
            )
            .unwrap();
        let image = fs::read(store.snapshot_path(42)).unwrap();
        assert!(parse_snapshot_bin(&image, 42).is_some(), "image is valid");
        for cut in 0..image.len() {
            assert!(
                parse_snapshot_bin(&image[..cut], 42).is_none(),
                "truncated snapshot (len {cut}) accepted"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The fault layer itself: per-op-class counting, absolute-index
    /// windows, recovery via `clear_faults`, and the fsync-gate lie
    /// (write reports success but the bytes never reach the file).
    #[test]
    fn faulty_backend_windows_count_and_lie_as_specified() {
        let dir = tmp_dir("faulty-unit");
        let backend = FaultyBackend::new(StorageFaultSchedule::new(1));
        backend.create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");

        // Window [1, 2): op 0 passes, op 1 fails, op 2 passes again.
        backend.arm(FaultKind::WriteEio, 1..2);
        let mut f = backend.create(&path).unwrap();
        f.write_all(b"aaaa").unwrap();
        let err = f.write_all(b"bbbb").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5), "EIO");
        f.write_all(b"cccc").unwrap();
        assert_eq!(backend.writes(), 3, "failed writes still count as ops");
        assert_eq!(f.file_len().unwrap(), 8, "only the EIO write was lost");

        // ENOSPC surfaces as the errno the prune path keys on.
        backend.arm(
            FaultKind::WriteEnospc,
            backend.writes()..backend.writes() + 1,
        );
        let err = f.write_all(b"dddd").unwrap_err();
        assert!(is_enospc(&err));

        // Fsync gate: the write *reports* success but drops the bytes —
        // the lie that makes fsync-hole testing possible.
        backend.arm(FaultKind::WriteFsyncGate, backend.writes()..u64::MAX);
        f.write_all(b"eeee").unwrap();
        assert_eq!(f.file_len().unwrap(), 8, "gated write never landed");

        // clear_faults models the disk coming back: everything works.
        backend.clear_faults();
        f.write_all(b"ffff").unwrap();
        f.sync_all().unwrap();
        assert_eq!(f.file_len().unwrap(), 12);
        assert!(backend.fsyncs() >= 1);

        // Open-window faults hit create/open_append alike.
        backend.arm(FaultKind::OpenFail, backend.opens()..u64::MAX);
        assert!(backend.create(&dir.join("no.bin")).is_err());
        assert!(backend.open_append(&path).is_err());
        backend.clear_faults();
        assert!(backend.open_append(&path).is_ok());

        // Clones share one fault state: arming through one arm is seen by
        // the other (the session and the test harness hold clones).
        let twin = backend.clone();
        backend.arm(FaultKind::RenameFail, twin.renames()..u64::MAX);
        let to = dir.join("renamed.bin");
        assert!(twin.rename(&path, &to).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
