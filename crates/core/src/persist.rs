//! Crash-safe session persistence: checkpoint + journal + warm restart.
//!
//! NR-Scope runs unattended for days against live cells; a process crash
//! must not cost the tracked C-RNTI population, throughput windows, or
//! sync-health state (re-discovering UEs passively takes until each next
//! RACHes). This module makes scope state durable with two artefacts:
//!
//! * **Snapshots** (`ckpt-<slot>.snap`): a versioned JSON image of all
//!   recoverable state ([`SessionState`]), written atomically
//!   (tmp + fsync + rename + directory fsync) on a slot-count cadence
//!   from a background writer thread so the hot path never blocks on
//!   storage.
//! * **Journal** (`journal-<start>.jnl`): an append-only record of every
//!   slot since the journal file's start — length-prefixed, CRC-guarded
//!   JSONL — flushed to the OS per slot, so `kill -9` loses at most the
//!   slot in flight.
//!
//! Recovery loads the newest *valid* snapshot (torn or corrupt ones are
//! detected by CRC + length prefix and skipped — never panic, never load
//! garbage) and replays the journal tail on top. Replay is idempotent via
//! the slot-sequence watermark: entries below the snapshot's slot are
//! already folded in and skip, so bytes are never double-counted no
//! matter how snapshot and journal overlap.

use crate::config::ScopeConfig;
use crate::governor::OverloadGovernor;
use crate::metrics::{Counter, Metrics, MetricsSnapshot};
use crate::scope::{CellKnowledge, NrScope, ScopeStats, SyncState};
use crate::telemetry::TelemetryRecord;
use crate::throughput::ThroughputState;
use crate::tracker::{TrackerAux, TrackerState};
use nr_phy::types::{Pci, Rnti};
use nr_rrc::RrcSetup;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the guard on
/// every snapshot payload and journal record. Bitwise, no table: this runs
/// once per slot on a few hundred bytes, not in the sample path.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One state-mutating operation of a processed slot, in occurrence order.
/// Replaying a slot's ops (then overwriting with its [`MicroState`])
/// reconstructs the scope exactly as the live run left it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SlotOp {
    /// A UE entered the tracked set (MSG 4 promotion or hypothesis-retry
    /// restore — the distinction washes out because the entry's aux image
    /// carries the bookkeeping verbatim).
    Track {
        /// The C-RNTI tracked.
        rnti: Rnti,
        /// The RRC Setup its state was built from.
        rrc: RrcSetup,
    },
    /// A telemetry record was produced (activity, HARQ memory, and
    /// throughput-window side effects are re-derived from the record).
    Record(TelemetryRecord),
    /// Housekeeping expired an idle UE.
    Expire {
        /// The expired C-RNTI.
        rnti: Rnti,
    },
}

/// End-of-slot continuous state, carried verbatim in every journal entry
/// so replay never re-derives sync/governor/stats decisions (and so
/// cannot drift from what the live run concluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroState {
    /// Cell knowledge (PCI, MIB, SIB1, frame anchor).
    pub cell: CellKnowledge,
    /// Sync-health machine state.
    pub sync: SyncState,
    /// Consecutive unhealthy slots feeding that machine.
    pub unhealthy_streak: u64,
    /// PCI believed before a sync loss (reacquisition hint).
    pub last_pci: Option<Pci>,
    /// Session counters.
    pub stats: ScopeStats,
    /// Overload-governor ladder state.
    pub governor: OverloadGovernor,
    /// Tracker bookkeeping (pending TC-RNTIs, expiry shadow, RRC cache).
    pub tracker_aux: TrackerAux,
}

/// One journal record: everything slot `seq` did to the session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The slot this entry describes.
    pub seq: u64,
    /// Whether the front end dropped this slot (diagnostics only; replay
    /// treats both kinds identically).
    pub dropped: bool,
    /// Ordered state mutations.
    pub ops: Vec<SlotOp>,
    /// End-of-slot continuous state.
    pub micro: MicroState,
}

/// The full recoverable image of a session — what a snapshot holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionState {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Next slot to process; doubles as the replay watermark.
    pub slot: u64,
    /// Cell knowledge.
    pub cell: CellKnowledge,
    /// Sync-health machine state.
    pub sync: SyncState,
    /// Consecutive unhealthy slots.
    pub unhealthy_streak: u64,
    /// Reacquisition PCI hint.
    pub last_pci: Option<Pci>,
    /// Out-of-band PCI the session was started with.
    pub assumed_pci: Option<Pci>,
    /// Session counters.
    pub stats: ScopeStats,
    /// Overload-governor ladder state.
    pub governor: OverloadGovernor,
    /// UE tracker (table + bookkeeping).
    pub tracker: TrackerState,
    /// Throughput estimator (windows + history).
    pub throughput: ThroughputState,
    /// Metrics counters at snapshot time.
    pub metrics: MetricsSnapshot,
}

/// What recovery found and did — written as `RECOVERY_report.json` by the
/// supervisor soak so CI can assert warm-restart invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Serialisation schema version.
    pub schema_version: u32,
    /// Whether any prior state was found (false = cold start).
    pub resumed: bool,
    /// Slot of the snapshot restored, if one was valid.
    pub snapshot_slot: Option<u64>,
    /// Snapshots rejected as torn/corrupt/future-schema before one loaded.
    pub corrupt_checkpoints_skipped: u64,
    /// Journal entries applied on top of the snapshot.
    pub replayed_entries: u64,
    /// Journal segments discarded as truncated or corrupt.
    pub journal_entries_discarded: u64,
    /// The slot the session resumed at (watermark after replay).
    pub resumed_slot: u64,
    /// UEs tracked at resume.
    pub recovered_ues: u64,
}

const SNAP_MAGIC: &str = "NRSCOPE-SNAP";
const JOURNAL_MAGIC: &str = "J1";
const SNAP_PREFIX: &str = "ckpt-";
const SNAP_SUFFIX: &str = ".snap";
const JOURNAL_PREFIX: &str = "journal-";
const JOURNAL_SUFFIX: &str = ".jnl";

/// Append one journal record: `J1 <len:08x> <crc:08x> <json>\n`. The
/// length prefix detects truncated tails, the CRC detects torn or
/// bit-flipped content — either way the reader stops at the last good
/// record instead of loading garbage.
pub fn append_journal_entry<W: Write>(w: &mut W, e: &JournalEntry) -> io::Result<()> {
    let json = serde_json::to_string(e).map_err(io::Error::from)?;
    writeln!(
        w,
        "{JOURNAL_MAGIC} {:08x} {:08x} {json}",
        json.len(),
        crc32(json.as_bytes())
    )
}

/// Parse journal bytes, stopping at the first invalid record (truncated
/// tail, bad CRC, zero-length or malformed payload, non-monotonic
/// sequence). Returns the valid prefix and the number of discarded
/// segments.
pub fn read_journal_bytes(data: &[u8]) -> (Vec<JournalEntry>, u64) {
    let mut out: Vec<JournalEntry> = Vec::new();
    let mut segments = data.split(|&b| b == b'\n').peekable();
    let mut discarded = 0u64;
    while let Some(seg) = segments.next() {
        // The final segment after the last '\n' is empty for a cleanly
        // terminated file and a partial record for a torn one.
        let is_tail = segments.peek().is_none();
        if is_tail && seg.is_empty() {
            break;
        }
        match parse_journal_segment(seg, out.last().map(|e| e.seq)) {
            Some(entry) => out.push(entry),
            None => {
                // Everything from the first bad record on is untrusted:
                // count it and stop.
                discarded = 1 + segments.filter(|s| !s.is_empty()).count() as u64;
                break;
            }
        }
    }
    (out, discarded)
}

fn parse_journal_segment(seg: &[u8], prev_seq: Option<u64>) -> Option<JournalEntry> {
    let text = std::str::from_utf8(seg).ok()?;
    let rest = text.strip_prefix(JOURNAL_MAGIC)?.strip_prefix(' ')?;
    let (len_hex, rest) = rest.split_at_checked(8)?;
    let rest = rest.strip_prefix(' ')?;
    let (crc_hex, rest) = rest.split_at_checked(8)?;
    let json = rest.strip_prefix(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if len == 0 || json.len() != len || crc32(json.as_bytes()) != crc {
        return None;
    }
    let entry: JournalEntry = serde_json::from_str(json).ok()?;
    // Sequences must strictly advance within a file; a repeat or a jump
    // backwards means the file was stitched or corrupted.
    if prev_seq.is_some_and(|p| entry.seq <= p) {
        return None;
    }
    Some(entry)
}

/// Directory of checkpoints + journals for one session, with atomic
/// snapshot writes and corruption-tolerant loading.
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    /// Open (creating if needed) a session directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<SessionStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SessionStore { dir })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file starting at `start_slot`.
    pub fn journal_path(&self, start_slot: u64) -> PathBuf {
        self.dir
            .join(format!("{JOURNAL_PREFIX}{start_slot:012}{JOURNAL_SUFFIX}"))
    }

    fn snapshot_path(&self, slot: u64) -> PathBuf {
        self.dir
            .join(format!("{SNAP_PREFIX}{slot:012}{SNAP_SUFFIX}"))
    }

    /// Slots of all snapshot files present, ascending.
    pub fn snapshot_slots(&self) -> Vec<u64> {
        self.list_slots(SNAP_PREFIX, SNAP_SUFFIX)
    }

    /// Start slots of all journal files present, ascending.
    pub fn journal_starts(&self) -> Vec<u64> {
        self.list_slots(JOURNAL_PREFIX, JOURNAL_SUFFIX)
    }

    fn list_slots(&self, prefix: &str, suffix: &str) -> Vec<u64> {
        let mut slots: Vec<u64> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                e.file_name()
                    .to_str()?
                    .strip_prefix(prefix)?
                    .strip_suffix(suffix)?
                    .parse()
                    .ok()
            })
            .collect();
        slots.sort_unstable();
        slots
    }

    /// Write a snapshot atomically: serialise, CRC, write to a temp file,
    /// fsync it, rename into place, fsync the directory. A crash at any
    /// point leaves either the old set of snapshots or the old set plus a
    /// complete new one — never a half-written file under the real name.
    pub fn write_checkpoint(&self, state: &SessionState) -> io::Result<u64> {
        let json = serde_json::to_string(state).map_err(io::Error::from)?;
        let header = format!(
            "{SNAP_MAGIC} {} {:08x} {:08x}\n",
            state.schema_version,
            json.len(),
            crc32(json.as_bytes())
        );
        let tmp = self
            .dir
            .join(format!(".tmp-{SNAP_PREFIX}{:012}", state.slot));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.snapshot_path(state.slot))?;
        // Persist the rename itself (directory metadata).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(state.slot)
    }

    /// Load the newest valid snapshot, walking backwards past torn,
    /// corrupt, or future-schema files. Returns the state (if any) and
    /// how many snapshots were rejected on the way.
    pub fn load_latest(&self) -> (Option<SessionState>, u64) {
        let mut rejected = 0u64;
        for slot in self.snapshot_slots().into_iter().rev() {
            match self.load_snapshot(slot) {
                Some(state) => return (Some(state), rejected),
                None => rejected += 1,
            }
        }
        (None, rejected)
    }

    fn load_snapshot(&self, slot: u64) -> Option<SessionState> {
        let data = fs::read(self.snapshot_path(slot)).ok()?;
        let nl = data.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&data[..nl]).ok()?;
        let mut parts = header.split(' ');
        if parts.next() != Some(SNAP_MAGIC) {
            return None;
        }
        let version: u32 = parts.next()?.parse().ok()?;
        if version > crate::SCHEMA_VERSION {
            return None;
        }
        let len = usize::from_str_radix(parts.next()?, 16).ok()?;
        let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
        let payload = &data[nl + 1..];
        if payload.len() != len || crc32(payload) != crc {
            return None;
        }
        let state: SessionState = serde_json::from_str(std::str::from_utf8(payload).ok()?).ok()?;
        if state.schema_version > crate::SCHEMA_VERSION {
            return None;
        }
        Some(state)
    }

    /// Delete all but the newest `keep` snapshots.
    pub fn prune_checkpoints(&self, keep: usize) {
        let slots = self.snapshot_slots();
        for &slot in slots.iter().rev().skip(keep.max(1)) {
            let _ = fs::remove_file(self.snapshot_path(slot));
        }
    }

    /// Delete journal files wholly covered by newer ones, given the oldest
    /// slot any retained snapshot still needs replay from. A file covers
    /// `[its start, next file's start)`; it is removable once the next
    /// file starts at or before `oldest_needed`.
    pub fn prune_journals(&self, oldest_needed: u64) {
        let starts = self.journal_starts();
        for pair in starts.windows(2) {
            if pair[1] <= oldest_needed {
                let _ = fs::remove_file(self.journal_path(pair[0]));
            }
        }
    }

    /// Rebuild a session: newest valid snapshot (or a fresh scope when
    /// none exists), then replay every journal entry at or past the
    /// watermark, stopping at corruption or a sequence gap. Never panics;
    /// the worst corruption possible degrades to a cold start.
    pub fn recover(&self, cfg: ScopeConfig, assumed_pci: Option<Pci>) -> (NrScope, RecoveryReport) {
        let (snapshot, rejected) = self.load_latest();
        let snapshot_slot = snapshot.as_ref().map(|s| s.slot);
        let had_journals = !self.journal_starts().is_empty();
        let mut scope = match &snapshot {
            Some(state) => NrScope::from_state(cfg, state),
            None => NrScope::new(cfg, assumed_pci),
        };
        let mut replayed = 0u64;
        let mut discarded = 0u64;
        'files: for start in self.journal_starts() {
            let Ok(data) = fs::read(self.journal_path(start)) else {
                continue;
            };
            let (entries, bad) = read_journal_bytes(&data);
            discarded += bad;
            for e in &entries {
                if e.seq > scope.slot_watermark() {
                    // A sequence gap (a journal file lost between this one
                    // and the watermark): applying ops at the wrong slot
                    // would corrupt state — stop replaying.
                    break 'files;
                }
                if scope.apply_journal_entry(e) {
                    replayed += 1;
                }
            }
        }
        let report = RecoveryReport {
            schema_version: crate::SCHEMA_VERSION,
            resumed: snapshot.is_some() || replayed > 0 || had_journals,
            snapshot_slot,
            corrupt_checkpoints_skipped: rejected,
            replayed_entries: replayed,
            journal_entries_discarded: discarded,
            resumed_slot: scope.slot_watermark(),
            recovered_ues: scope.tracked_rntis().len() as u64,
        };
        (scope, report)
    }
}

/// Background checkpoint writer: a single worker thread fed through a
/// depth-1 channel. The hot path hands over a frozen [`SessionState`] and
/// returns immediately; if the previous write is still in flight the
/// request is skipped (and counted) rather than queued — a fresher
/// snapshot is always coming.
struct CheckpointWriter {
    tx: Option<SyncSender<SessionState>>,
    handle: Option<JoinHandle<()>>,
    last_written: Arc<AtomicU64>,
    metrics: Arc<Metrics>,
}

impl CheckpointWriter {
    fn spawn(store: SessionStore, keep: usize, metrics: Arc<Metrics>) -> CheckpointWriter {
        let (tx, rx) = sync_channel::<SessionState>(1);
        let last_written = Arc::new(AtomicU64::new(0));
        let last = Arc::clone(&last_written);
        let m = Arc::clone(&metrics);
        let handle = crate::worker::spawn_background("checkpoint", move || {
            while let Ok(state) = rx.recv() {
                match store.write_checkpoint(&state) {
                    Ok(slot) => {
                        last.store(slot, Relaxed);
                        m.inc(Counter::CheckpointsWritten);
                        store.prune_checkpoints(keep);
                        if let Some(&oldest) = store.snapshot_slots().first() {
                            store.prune_journals(oldest);
                        }
                    }
                    Err(_) => m.inc(Counter::CheckpointFailures),
                }
            }
        });
        CheckpointWriter {
            tx: Some(tx),
            handle: Some(handle),
            last_written,
            metrics,
        }
    }

    /// Offer a snapshot; returns immediately. Skipped (and counted) when
    /// the writer is still busy with the previous one.
    fn try_submit(&self, state: SessionState) {
        if let Some(tx) = &self.tx {
            match tx.try_send(state) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.metrics.inc(Counter::CheckpointsSkipped);
                }
            }
        }
    }

    /// Newest slot durably checkpointed by the background thread.
    fn last_written(&self) -> u64 {
        self.last_written.load(Relaxed)
    }

    /// Drain and join the writer.
    fn shutdown(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Persistence knobs.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Session directory (checkpoints + journals).
    pub dir: PathBuf,
    /// Snapshot cadence in slots (512 ≈ every 0.25 s at µ=1).
    pub checkpoint_every_slots: u64,
    /// Snapshots retained (≥ 1; the previous one is the fallback when the
    /// newest turns out torn).
    pub keep_checkpoints: usize,
}

impl PersistConfig {
    /// Defaults: checkpoint every 512 slots, keep 2.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            checkpoint_every_slots: 512,
            keep_checkpoints: 2,
        }
    }
}

/// An [`NrScope`] wrapped with durability: every processed capture is
/// journalled, snapshots stream from a background writer, and
/// [`PersistentSession::open`] warm-restarts from whatever survived the
/// last crash.
pub struct PersistentSession {
    scope: NrScope,
    store: SessionStore,
    cfg: PersistConfig,
    journal: BufWriter<File>,
    /// Start slot of the journal file currently being appended.
    journal_start: u64,
    writer: CheckpointWriter,
}

impl PersistentSession {
    /// Open (or resume) a durable session in `cfg.dir`. Recovery is part
    /// of opening: the returned report says what was restored.
    pub fn open(
        cfg: PersistConfig,
        scope_cfg: ScopeConfig,
        assumed_pci: Option<Pci>,
    ) -> io::Result<(PersistentSession, RecoveryReport)> {
        let store = SessionStore::new(&cfg.dir)?;
        let (mut scope, report) = store.recover(scope_cfg, assumed_pci);
        scope.start_journaling();
        let journal_start = scope.slot_watermark();
        let journal = open_journal(&store, journal_start)?;
        let writer = CheckpointWriter::spawn(
            store.clone(),
            cfg.keep_checkpoints,
            Arc::clone(scope.metrics()),
        );
        Ok((
            PersistentSession {
                scope,
                store,
                cfg,
                journal,
                journal_start,
                writer,
            },
            report,
        ))
    }

    /// The wrapped scope.
    pub fn scope(&self) -> &NrScope {
        &self.scope
    }

    /// Mutable access to the wrapped scope.
    pub fn scope_mut(&mut self) -> &mut NrScope {
        &mut self.scope
    }

    /// The session store (tests inspect the directory through this).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Process one capture durably: decode, journal the slot (flushed to
    /// the OS, so `kill -9` cannot lose it), and kick the checkpoint
    /// cadence. Journal write failures are counted in metrics, never
    /// raised — losing durability must not stop capture.
    pub fn process_capture(&mut self, cap: &crate::observe::Capture) -> Vec<TelemetryRecord> {
        let records = self.scope.process_capture(cap);
        if let Some(entry) = self.scope.take_journal_entry() {
            let ok = append_journal_entry(&mut self.journal, &entry).is_ok()
                && self.journal.flush().is_ok();
            if !ok {
                self.scope.metrics().inc(Counter::JournalWriteFailures);
            }
        }
        let watermark = self.scope.slot_watermark();
        if watermark.is_multiple_of(self.cfg.checkpoint_every_slots) {
            self.writer.try_submit(self.scope.session_state());
        }
        // Once a checkpoint newer than this journal file's start is
        // durable, rotate: replay will start from that snapshot, so new
        // entries belong in a file aligned with it and older files become
        // prunable.
        if self.writer.last_written() > self.journal_start {
            if let Ok(j) = open_journal(&self.store, watermark) {
                let _ = self.journal.flush();
                self.journal = j;
                self.journal_start = watermark;
            }
        }
        records
    }

    /// Write a checkpoint synchronously (shutdown path — unlike the
    /// cadence writes, the caller wants it durable before returning).
    pub fn checkpoint_now(&mut self) -> io::Result<u64> {
        let slot = self.store.write_checkpoint(&self.scope.session_state())?;
        self.store.prune_checkpoints(self.cfg.keep_checkpoints);
        if let Some(&oldest) = self.store.snapshot_slots().first() {
            self.store.prune_journals(oldest);
        }
        Ok(slot)
    }

    /// Clean shutdown: flush the journal, write a final checkpoint, stop
    /// the background writer.
    pub fn finalize(mut self) -> io::Result<u64> {
        self.journal.flush()?;
        let slot = self.checkpoint_now()?;
        self.writer.shutdown();
        Ok(slot)
    }
}

fn open_journal(store: &SessionStore, start_slot: u64) -> io::Result<BufWriter<File>> {
    // Append: re-opening after a crash-before-rotation continues the same
    // file (the reader tolerates a torn final record).
    let f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(store.journal_path(start_slot))?;
    Ok(BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("nrscope-persist-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn dummy_entry(seq: u64) -> JournalEntry {
        JournalEntry {
            seq,
            dropped: false,
            ops: Vec::new(),
            micro: MicroState {
                cell: CellKnowledge::default(),
                sync: SyncState::Synced,
                unhealthy_streak: 0,
                last_pci: None,
                stats: ScopeStats::default(),
                governor: OverloadGovernor::new(crate::governor::GovernorConfig::default()),
                tracker_aux: TrackerAux::default(),
            },
        }
    }

    #[test]
    fn journal_round_trip() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            append_journal_entry(&mut buf, &dummy_entry(seq)).unwrap();
        }
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 5);
        assert_eq!(discarded, 0);
        assert_eq!(entries[4].seq, 4);
    }

    #[test]
    fn truncated_tail_recovers_valid_prefix() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            append_journal_entry(&mut buf, &dummy_entry(seq)).unwrap();
        }
        // Tear the file mid-way through the final record.
        buf.truncate(buf.len() - 10);
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 4);
        assert!(discarded >= 1);
    }

    #[test]
    fn flipped_crc_byte_stops_replay_at_the_bad_record() {
        let mut good = Vec::new();
        append_journal_entry(&mut good, &dummy_entry(0)).unwrap();
        let record_len = good.len();
        for seq in 1..4 {
            append_journal_entry(&mut good, &dummy_entry(seq)).unwrap();
        }
        // Flip a payload byte of record 1 (past its header).
        let mut bad = good.clone();
        bad[record_len + 30] ^= 0x01;
        let (entries, discarded) = read_journal_bytes(&bad);
        assert_eq!(entries.len(), 1, "replay stops before the corrupt record");
        assert!(discarded >= 1);
    }

    #[test]
    fn zero_length_record_is_rejected() {
        let mut buf = Vec::new();
        append_journal_entry(&mut buf, &dummy_entry(0)).unwrap();
        buf.extend_from_slice(format!("J1 {:08x} {:08x} \n", 0, crc32(b"")).as_bytes());
        append_journal_entry(&mut buf, &dummy_entry(1)).unwrap();
        let (entries, discarded) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 1);
        assert!(discarded >= 1, "everything after the bad record distrusted");
    }

    #[test]
    fn non_monotonic_sequence_is_rejected() {
        let mut buf = Vec::new();
        append_journal_entry(&mut buf, &dummy_entry(3)).unwrap();
        append_journal_entry(&mut buf, &dummy_entry(3)).unwrap();
        let (entries, _) = read_journal_bytes(&buf);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_checkpoint() {
        let dir = tmp_dir("torn-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(1)));
        let mut state = scope.session_state();
        state.slot = 100;
        store.write_checkpoint(&state).unwrap();
        state.slot = 200;
        store.write_checkpoint(&state).unwrap();
        // Tear the newest snapshot (as an interrupted write would).
        let newest = store.snapshot_slots().last().copied().unwrap();
        assert_eq!(newest, 200);
        let path = dir.join("ckpt-000000000200.snap");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() / 2]).unwrap();
        let (loaded, rejected) = store.load_latest();
        assert_eq!(loaded.unwrap().slot, 100, "fell back to previous");
        assert_eq!(rejected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_schema_snapshot_is_rejected() {
        let dir = tmp_dir("future-snap");
        let store = SessionStore::new(&dir).unwrap();
        let scope = NrScope::new(ScopeConfig::default(), Some(Pci(1)));
        let mut state = scope.session_state();
        state.slot = 100;
        state.schema_version = crate::SCHEMA_VERSION + 1;
        store.write_checkpoint(&state).unwrap();
        let (loaded, rejected) = store.load_latest();
        assert!(loaded.is_none());
        assert_eq!(rejected, 1);
        // Recovery degrades to a cold start instead of loading it.
        let (recovered, report) = store.recover(ScopeConfig::default(), Some(Pci(1)));
        assert_eq!(recovered.slot_watermark(), 0);
        assert_eq!(report.corrupt_checkpoints_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
