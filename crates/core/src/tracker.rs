//! UE association tracking (paper §3.1.2): the known-UE list, the RACH
//! watcher that feeds it, and per-UE HARQ/NDI state.

use nr_mac::HarqTracker;
use nr_phy::types::Rnti;
use nr_rrc::RrcSetup;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Telemetry-side state for one tracked UE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackedUe {
    /// The UE's C-RNTI.
    pub rnti: Rnti,
    /// Slot the UE was discovered (MSG 4 seen).
    pub discovered_slot: u64,
    /// Last slot with any decoded DCI for this UE.
    pub last_active_slot: u64,
    /// Downlink HARQ/NDI memory (retransmission detection).
    pub harq_dl: HarqTracker,
    /// Uplink HARQ/NDI memory.
    pub harq_ul: HarqTracker,
    /// The UE-specific parameters from its RRC Setup.
    pub rrc: RrcSetup,
}

/// Bound on concurrent probationary RNTIs. A hostile cell can mint a new
/// candidate every slot; capping the set bounds both memory and the extra
/// UE-pass hypothesis work a flood can induce. When full, the stalest
/// candidate is displaced straight into quarantine.
const PROBATION_MAX: usize = 32;

/// Stage-2 admission verdict for one corroborating decode of an
/// unadmitted C-RNTI (see [`UeTracker::note_candidate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// K corroborating decodes reached inside the window — promote now.
    Admit,
    /// Still gathering corroboration; the RNTI is not tracked yet.
    Pending,
    /// The RNTI sits in the quarantine ledger; its reappearance was
    /// counted and nothing else happened.
    Quarantined,
}

/// One quarantine-ledger entry: a candidate C-RNTI that failed probation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Slot the RNTI entered the ledger.
    pub quarantined_at: u64,
    /// Decodes observed for this RNTI *after* it was quarantined — a
    /// persistent forger keeps scoring here instead of minting UEs.
    pub reappearances: u64,
}

/// The known-UE list plus RACH-procedure shadowing state.
#[derive(Debug, Default)]
pub struct UeTracker {
    ues: HashMap<Rnti, TrackedUe>,
    /// TC-RNTIs learned from RAR (MSG 2) payloads, awaiting their MSG 4,
    /// with the slot the RAR was seen.
    pending_tc: HashMap<Rnti, u64>,
    /// Cached RRC Setup (identical across UEs, §3.1.2) enabling the
    /// skip-PDSCH optimisation.
    cached_rrc: Option<RrcSetup>,
    /// Every RNTI ever promoted — so expiry followed by rediscovery
    /// (e.g. after an outage) does not double-count `total_discovered`.
    ever_seen: HashSet<Rnti>,
    /// RNTIs expired recently, with the expiry slot: extra hypotheses the
    /// recovery path retries while the session is degraded.
    recently_expired: HashMap<Rnti, u64>,
    /// Stage-2 admission control: recovery-minted C-RNTIs on probation,
    /// each with its corroborating decode slots (sliding window).
    probation: HashMap<Rnti, Vec<u64>>,
    /// Quarantine ledger: candidates that failed probation, kept so a
    /// recurring ghost is rejected in O(1) instead of re-probated.
    quarantine: HashMap<Rnti, QuarantineEntry>,
    /// Ledger entries displaced by the size bound (counted eviction).
    pub quarantine_evictions: u64,
    /// Total distinct UEs ever discovered (Fig 10-style accounting).
    pub total_discovered: u64,
}

/// Serialisable image of the tracker's bookkeeping (everything except the
/// UE table itself). Maps become sorted vectors so snapshots are
/// byte-deterministic across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackerAux {
    /// `pending_tc` as sorted `(rnti, rar_slot)` pairs.
    pub pending_tc: Vec<(Rnti, u64)>,
    /// `recently_expired` as sorted `(rnti, expired_at_slot)` pairs.
    pub recently_expired: Vec<(Rnti, u64)>,
    /// The cached RRC Setup (§3.1.2 skip-PDSCH optimisation).
    pub cached_rrc: Option<RrcSetup>,
    /// Every RNTI ever promoted, sorted.
    pub ever_seen: Vec<Rnti>,
    /// Distinct-UE discovery count.
    pub total_discovered: u64,
    /// `probation` as sorted `(rnti, sighting_slots)` pairs. Defaulted so
    /// pre-hardening snapshots still deserialise.
    #[serde(default)]
    pub probation: Vec<(Rnti, Vec<u64>)>,
    /// `quarantine` as sorted `(rnti, entry)` pairs.
    #[serde(default)]
    pub quarantine: Vec<(Rnti, QuarantineEntry)>,
    /// Lifetime count of counted evictions from the bounded ledger.
    #[serde(default)]
    pub quarantine_evictions: u64,
}

/// Full serialisable tracker image: the UE table plus the bookkeeping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrackerState {
    /// Tracked UEs sorted by RNTI.
    pub ues: Vec<TrackedUe>,
    /// RACH-shadowing bookkeeping.
    pub aux: TrackerAux,
}

impl UeTracker {
    /// Fresh tracker.
    pub fn new() -> UeTracker {
        UeTracker::default()
    }

    /// Note a TC-RNTI announced in a decoded RAR (MSG 2).
    pub fn rar_seen(&mut self, tc_rnti: Rnti, slot: u64) {
        self.pending_tc.insert(tc_rnti, slot);
    }

    /// TC-RNTIs currently awaiting MSG 4 (tried as CRC hypotheses on
    /// common-search-space candidates).
    pub fn pending_tc_rntis(&self) -> Vec<Rnti> {
        self.pending_tc.keys().copied().collect()
    }

    /// MSG 4 for `tc_rnti` decoded: promote it to a tracked C-RNTI.
    /// `rrc` is the decoded (or cached) RRC Setup. Returns `true` when
    /// this is a first discovery, `false` for a rediscovery (the RNTI was
    /// tracked before and expired — recovery, not a new UE).
    pub fn promote(&mut self, tc_rnti: Rnti, slot: u64, rrc: RrcSetup) -> bool {
        self.pending_tc.remove(&tc_rnti);
        self.recently_expired.remove(&tc_rnti);
        self.probation.remove(&tc_rnti);
        self.quarantine.remove(&tc_rnti);
        self.cached_rrc = Some(rrc);
        let newly_discovered = self.ever_seen.insert(tc_rnti);
        if newly_discovered {
            self.total_discovered += 1;
        }
        self.ues.insert(
            tc_rnti,
            TrackedUe {
                rnti: tc_rnti,
                discovered_slot: slot,
                last_active_slot: slot,
                harq_dl: HarqTracker::new(),
                harq_ul: HarqTracker::new(),
                rrc,
            },
        );
        newly_discovered
    }

    /// RNTIs that expired within the last `window` slots before `now` —
    /// retried as decode hypotheses while re-synchronising, so UEs that
    /// stayed connected through a sniffer outage are re-tracked without
    /// waiting for fresh RACH traffic.
    pub fn recently_expired(&self, now: u64, window: u64) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self
            .recently_expired
            .iter()
            .filter(|(_, at)| now.saturating_sub(**at) <= window)
            .map(|(r, _)| *r)
            .collect();
        v.sort();
        v
    }

    /// Re-track an RNTI directly (recovery path: a UE-specific DCI just
    /// decoded for a recently-expired RNTI proves the UE never left).
    /// Does not touch `total_discovered` — the UE was already counted.
    /// No-op without a cached RRC Setup to rebuild the UE state from.
    pub fn restore(&mut self, rnti: Rnti, slot: u64) -> bool {
        if !self.ever_seen.contains(&rnti) {
            return false;
        }
        let Some(rrc) = self.cached_rrc else {
            return false;
        };
        self.recently_expired.remove(&rnti);
        self.probation.remove(&rnti);
        self.ues.insert(
            rnti,
            TrackedUe {
                rnti,
                discovered_slot: slot,
                last_active_slot: slot,
                harq_dl: HarqTracker::new(),
                harq_ul: HarqTracker::new(),
                rrc,
            },
        );
        true
    }

    /// The cached RRC Setup, if any UE has been decoded yet.
    pub fn cached_rrc(&self) -> Option<&RrcSetup> {
        self.cached_rrc.as_ref()
    }

    /// Whether `rnti` is a RAR-shadowed TC-RNTI awaiting its MSG 4.
    /// Such RNTIs are corroborated by the RACH procedure itself and skip
    /// stage-2 probation.
    pub fn is_pending_tc(&self, rnti: Rnti) -> bool {
        self.pending_tc.contains_key(&rnti)
    }

    /// Whether `rnti` was ever legitimately promoted (rediscovery after an
    /// outage is not a never-before-seen candidate).
    pub fn was_ever_seen(&self, rnti: Rnti) -> bool {
        self.ever_seen.contains(&rnti)
    }

    /// Stage-2 admission control: record one corroborating decode for an
    /// unadmitted, recovery-minted C-RNTI. The candidate is admitted once
    /// `k` decodes land within a sliding `window` of slots; until then it
    /// sits in a bounded probation set whose RNTIs ride the UE-pass
    /// hypothesis list — a real UE corroborates itself through its own
    /// UE-scrambled DCIs, a CRC-collision ghost never does. Returns the
    /// verdict plus any probation candidate displaced into quarantine by
    /// the size bound (for metrics).
    pub fn note_candidate(
        &mut self,
        rnti: Rnti,
        slot: u64,
        k: usize,
        window: u64,
        quarantine_max: usize,
    ) -> (Admission, Option<Rnti>) {
        if self.ues.contains_key(&rnti) {
            return (Admission::Admit, None);
        }
        if let Some(q) = self.quarantine.get_mut(&rnti) {
            q.reappearances += 1;
            return (Admission::Quarantined, None);
        }
        let sightings = self.probation.entry(rnti).or_default();
        sightings.retain(|&s| slot.saturating_sub(s) <= window);
        // One sighting per slot: corroboration requires K *distinct*
        // slots, or a single slot carrying K copies of one ghost codeword
        // (the hypothesis list is only refreshed between slots) would
        // self-corroborate.
        if sightings.last() != Some(&slot) {
            sightings.push(slot);
        }
        if sightings.len() >= k.max(1) {
            self.probation.remove(&rnti);
            return (Admission::Admit, None);
        }
        // Bound the probation set under a candidate flood: displace the
        // candidate with the stalest latest sighting into quarantine
        // (deterministic tie-break on the RNTI value).
        let mut displaced = None;
        if self.probation.len() > PROBATION_MAX {
            let victim = self
                .probation
                .iter()
                .filter(|(r, _)| **r != rnti)
                .min_by_key(|(r, s)| (s.last().copied().unwrap_or(0), r.0))
                .map(|(r, _)| *r);
            if let Some(v) = victim {
                self.probation.remove(&v);
                self.quarantine_insert(v, slot, quarantine_max);
                displaced = Some(v);
            }
        }
        (Admission::Pending, displaced)
    }

    /// Move probation candidates whose corroboration window lapsed into
    /// the quarantine ledger. Returns the newly quarantined RNTIs, sorted.
    pub fn expire_probation(&mut self, now: u64, window: u64, quarantine_max: usize) -> Vec<Rnti> {
        let mut lapsed: Vec<Rnti> = self
            .probation
            .iter()
            .filter(|(_, s)| {
                s.last()
                    .is_none_or(|&last| now.saturating_sub(last) > window)
            })
            .map(|(r, _)| *r)
            .collect();
        lapsed.sort();
        for r in &lapsed {
            self.probation.remove(r);
            self.quarantine_insert(*r, now, quarantine_max);
        }
        lapsed
    }

    /// Insert into the bounded quarantine ledger, evicting the oldest
    /// entry (counted) when full.
    fn quarantine_insert(&mut self, rnti: Rnti, slot: u64, quarantine_max: usize) {
        while self.quarantine.len() >= quarantine_max.max(1) {
            let oldest = self
                .quarantine
                .iter()
                .min_by_key(|(r, e)| (e.quarantined_at, r.0))
                .map(|(r, _)| *r);
            match oldest {
                Some(r) => {
                    self.quarantine.remove(&r);
                    self.quarantine_evictions += 1;
                }
                None => break,
            }
        }
        self.quarantine.insert(
            rnti,
            QuarantineEntry {
                quarantined_at: slot,
                reappearances: 0,
            },
        );
    }

    /// Whether `rnti` sits in the quarantine ledger.
    pub fn is_quarantined(&self, rnti: Rnti) -> bool {
        self.quarantine.contains_key(&rnti)
    }

    /// Whether `rnti` is on stage-2 probation.
    pub fn is_probationary(&self, rnti: Rnti) -> bool {
        self.probation.contains_key(&rnti)
    }

    /// Probationary RNTIs (sorted) — extra UE-pass hypotheses so a real
    /// UE on probation can corroborate itself.
    pub fn probation_rntis(&self) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self.probation.keys().copied().collect();
        v.sort();
        v
    }

    /// Quarantined RNTIs (sorted).
    pub fn quarantined_rntis(&self) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self.quarantine.keys().copied().collect();
        v.sort();
        v
    }

    /// Quarantine-ledger size (exported as a gauge).
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    /// Reappearance count for a quarantined RNTI, if present.
    pub fn quarantine_reappearances(&self, rnti: Rnti) -> Option<u64> {
        self.quarantine.get(&rnti).map(|e| e.reappearances)
    }

    /// Whether an RNTI is currently tracked.
    pub fn contains(&self, rnti: Rnti) -> bool {
        self.ues.contains_key(&rnti)
    }

    /// All currently tracked RNTIs (sorted, deterministic).
    pub fn rntis(&self) -> Vec<Rnti> {
        let mut v: Vec<Rnti> = self.ues.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of tracked UEs.
    pub fn len(&self) -> usize {
        self.ues.len()
    }

    /// Whether no UEs are tracked.
    pub fn is_empty(&self) -> bool {
        self.ues.is_empty()
    }

    /// Mutable access for HARQ observation and activity updates.
    pub fn get_mut(&mut self, rnti: Rnti) -> Option<&mut TrackedUe> {
        self.ues.get_mut(&rnti)
    }

    /// Shared access.
    pub fn get(&self, rnti: Rnti) -> Option<&TrackedUe> {
        self.ues.get(&rnti)
    }

    /// Expire UEs idle longer than `expiry_slots`, and stale pending
    /// TC-RNTIs whose MSG 4 never appeared within `ra_window_slots`.
    /// Returns the expired RNTIs with the slot each was last seen active
    /// (the cross-cell continuity matcher anchors on the activity edge,
    /// not the much-later expiry sweep).
    pub fn expire(
        &mut self,
        now: u64,
        expiry_slots: u64,
        ra_window_slots: u64,
    ) -> Vec<(Rnti, u64)> {
        let dead: Vec<(Rnti, u64)> = self
            .ues
            .iter()
            .filter(|(_, u)| now.saturating_sub(u.last_active_slot) > expiry_slots)
            .map(|(r, u)| (*r, u.last_active_slot))
            .collect();
        for (r, _) in &dead {
            self.ues.remove(r);
            self.recently_expired.insert(*r, now);
        }
        self.pending_tc
            .retain(|_, seen| now.saturating_sub(*seen) <= ra_window_slots);
        dead
    }

    /// Freeze the bookkeeping (everything but the UE table) into a
    /// serialisable, deterministically-ordered image.
    pub fn aux_state(&self) -> TrackerAux {
        let mut pending_tc: Vec<(Rnti, u64)> =
            self.pending_tc.iter().map(|(r, s)| (*r, *s)).collect();
        pending_tc.sort();
        let mut recently_expired: Vec<(Rnti, u64)> = self
            .recently_expired
            .iter()
            .map(|(r, s)| (*r, *s))
            .collect();
        recently_expired.sort();
        let mut ever_seen: Vec<Rnti> = self.ever_seen.iter().copied().collect();
        ever_seen.sort();
        let mut probation: Vec<(Rnti, Vec<u64>)> = self
            .probation
            .iter()
            .map(|(r, s)| (*r, s.clone()))
            .collect();
        probation.sort();
        let mut quarantine: Vec<(Rnti, QuarantineEntry)> =
            self.quarantine.iter().map(|(r, e)| (*r, *e)).collect();
        quarantine.sort_by_key(|(r, _)| *r);
        TrackerAux {
            pending_tc,
            recently_expired,
            cached_rrc: self.cached_rrc,
            ever_seen,
            total_discovered: self.total_discovered,
            probation,
            quarantine,
            quarantine_evictions: self.quarantine_evictions,
        }
    }

    /// Overwrite the bookkeeping from a frozen image (journal replay
    /// carries the end-of-slot aux verbatim, so promote/restore
    /// bookkeeping differences never accumulate drift).
    pub fn set_aux(&mut self, aux: &TrackerAux) {
        self.pending_tc = aux.pending_tc.iter().copied().collect();
        self.recently_expired = aux.recently_expired.iter().copied().collect();
        self.cached_rrc = aux.cached_rrc;
        self.ever_seen = aux.ever_seen.iter().copied().collect();
        self.total_discovered = aux.total_discovered;
        self.probation = aux.probation.iter().cloned().collect();
        self.quarantine = aux.quarantine.iter().copied().collect();
        self.quarantine_evictions = aux.quarantine_evictions;
    }

    /// Freeze the whole tracker into a serialisable image.
    pub fn state(&self) -> TrackerState {
        let mut ues: Vec<TrackedUe> = self.ues.values().cloned().collect();
        ues.sort_by_key(|u| u.rnti);
        TrackerState {
            ues,
            aux: self.aux_state(),
        }
    }

    /// Rebuild a tracker from a frozen image. `watermark` is the restored
    /// slot counter: each UE's `last_active_slot` is rebased up to it so a
    /// UE that was healthy at checkpoint time cannot be instantly expired
    /// by the first post-restart housekeeping pass (the snapshot may be
    /// old relative to the journal tail, and wall-clock downtime must not
    /// count as UE idle time).
    pub fn from_state(state: &TrackerState, watermark: u64) -> UeTracker {
        let mut t = UeTracker::new();
        for ue in &state.ues {
            let mut ue = ue.clone();
            ue.last_active_slot = ue.last_active_slot.max(watermark);
            t.ues.insert(ue.rnti, ue);
        }
        t.set_aux(&state.aux);
        t
    }

    /// Journal replay: re-insert a UE exactly as the live `promote`/
    /// `restore` paths did — fresh HARQ memory, discovered-and-active at
    /// `slot`. Bookkeeping (counts, pending sets) is not touched here; the
    /// journal entry's aux image overwrites it at end of slot.
    pub fn replay_track(&mut self, rnti: Rnti, slot: u64, rrc: RrcSetup) {
        self.ues.insert(
            rnti,
            TrackedUe {
                rnti,
                discovered_slot: slot,
                last_active_slot: slot,
                harq_dl: HarqTracker::new(),
                harq_ul: HarqTracker::new(),
                rrc,
            },
        );
    }

    /// Journal replay: remove a UE the live housekeeping pass expired.
    pub fn replay_expire(&mut self, rnti: Rnti) {
        self.ues.remove(&rnti);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rrc() -> RrcSetup {
        gnb_sim::CellConfig::srsran_n41().rrc_setup()
    }

    #[test]
    fn rar_then_promote_flow() {
        let mut t = UeTracker::new();
        let tc = Rnti(0x4601);
        t.rar_seen(tc, 10);
        assert_eq!(t.pending_tc_rntis(), vec![tc]);
        assert!(!t.contains(tc));
        t.promote(tc, 17, rrc());
        assert!(t.contains(tc));
        assert!(t.pending_tc_rntis().is_empty());
        assert_eq!(t.total_discovered, 1);
        assert!(t.cached_rrc().is_some());
    }

    #[test]
    fn expiry_removes_idle_ues() {
        let mut t = UeTracker::new();
        t.promote(Rnti(1), 0, rrc());
        t.promote(Rnti(2), 0, rrc());
        t.get_mut(Rnti(2)).unwrap().last_active_slot = 900;
        let dead = t.expire(1000, 500, 100);
        assert_eq!(dead, vec![(Rnti(1), 0)]);
        assert!(t.contains(Rnti(2)));
    }

    #[test]
    fn stale_pending_tc_rntis_are_dropped() {
        let mut t = UeTracker::new();
        t.rar_seen(Rnti(5), 0);
        t.rar_seen(Rnti(6), 95);
        t.expire(100, 1000, 20);
        assert_eq!(t.pending_tc_rntis(), vec![Rnti(6)]);
    }

    #[test]
    fn rediscovery_after_expiry_is_not_double_counted() {
        let mut t = UeTracker::new();
        assert!(t.promote(Rnti(0x4601), 100, rrc()), "first discovery");
        assert_eq!(t.total_discovered, 1);
        let dead = t.expire(30_000, 20_000, 100);
        assert_eq!(dead, vec![(Rnti(0x4601), 100)]);
        assert!(!t.contains(Rnti(0x4601)));
        // The UE RACHes again after the outage: same RNTI, same UE.
        assert!(!t.promote(Rnti(0x4601), 30_500, rrc()), "rediscovery");
        assert!(t.contains(Rnti(0x4601)));
        assert_eq!(t.total_discovered, 1, "no double count");
        // A genuinely new UE still counts.
        assert!(t.promote(Rnti(0x4602), 30_600, rrc()));
        assert_eq!(t.total_discovered, 2);
    }

    #[test]
    fn recently_expired_window_and_restore() {
        let mut t = UeTracker::new();
        t.promote(Rnti(10), 0, rrc());
        t.promote(Rnti(11), 0, rrc());
        t.get_mut(Rnti(11)).unwrap().last_active_slot = 7_000;
        t.expire(10_000, 4_000, 100); // expires Rnti(10) only
        assert_eq!(t.recently_expired(10_000, 2_000), vec![Rnti(10)]);
        // Outside the retry window the hypothesis is dropped.
        assert!(t.recently_expired(13_000, 2_000).is_empty());
        // Restore re-tracks from the cached RRC without re-counting.
        assert!(t.restore(Rnti(10), 10_050));
        assert!(t.contains(Rnti(10)));
        assert_eq!(t.total_discovered, 2);
        assert!(t.recently_expired(10_100, 2_000).is_empty());
    }

    #[test]
    fn restore_without_cached_rrc_is_a_noop() {
        let mut t = UeTracker::new();
        assert!(!t.restore(Rnti(3), 10));
        assert!(!t.contains(Rnti(3)));
        assert_eq!(t.total_discovered, 0);
    }

    #[test]
    fn state_round_trip_preserves_everything() {
        let mut t = UeTracker::new();
        t.rar_seen(Rnti(0x5000), 40);
        t.promote(Rnti(0x4601), 100, rrc());
        t.promote(Rnti(0x4602), 200, rrc());
        t.get_mut(Rnti(0x4601)).unwrap().harq_dl.observe(3, 1);
        t.expire(25_000, 20_000, 100); // both idle UEs expire
        t.promote(Rnti(0x4603), 25_100, rrc());

        let state = t.state();
        let back = UeTracker::from_state(&state, 0);
        assert_eq!(back.rntis(), t.rntis());
        assert_eq!(back.total_discovered, 3);
        assert_eq!(back.aux_state(), t.aux_state());
        assert_eq!(
            back.get(Rnti(0x4603)).unwrap().discovered_slot,
            t.get(Rnti(0x4603)).unwrap().discovered_slot
        );
    }

    #[test]
    fn restore_rebases_last_active_against_watermark() {
        let mut t = UeTracker::new();
        t.promote(Rnti(0x4601), 100, rrc());
        let state = t.state();
        // Checkpoint taken at slot ~100; journal tail replayed to 50_000.
        // Without rebasing, the first expiry pass (> 20_000 idle) would
        // silently drop the UE the moment the session resumes.
        let mut back = UeTracker::from_state(&state, 50_000);
        assert_eq!(back.get(Rnti(0x4601)).unwrap().last_active_slot, 50_000);
        assert!(back.expire(50_010, 20_000, 100).is_empty());
        assert!(back.contains(Rnti(0x4601)));
    }

    #[test]
    fn candidate_admitted_after_k_corroborations_in_window() {
        let mut t = UeTracker::new();
        let r = Rnti(0x4700);
        assert_eq!(t.note_candidate(r, 10, 3, 100, 64).0, Admission::Pending);
        assert!(t.is_probationary(r));
        assert_eq!(t.note_candidate(r, 20, 3, 100, 64).0, Admission::Pending);
        assert_eq!(t.note_candidate(r, 30, 3, 100, 64).0, Admission::Admit);
        assert!(!t.is_probationary(r), "admitted candidates leave probation");
    }

    #[test]
    fn same_slot_duplicates_count_as_one_sighting() {
        // K copies of one ghost codeword in a single slot (duplicated
        // candidates, stale hypothesis list) must not self-corroborate.
        let mut t = UeTracker::new();
        let r = Rnti(0x4700);
        for _ in 0..10 {
            assert_eq!(t.note_candidate(r, 10, 3, 100, 64).0, Admission::Pending);
        }
        assert!(t.is_probationary(r));
        assert_eq!(t.note_candidate(r, 11, 3, 100, 64).0, Admission::Pending);
        assert_eq!(t.note_candidate(r, 12, 3, 100, 64).0, Admission::Admit);
    }

    #[test]
    fn stale_sightings_fall_out_of_the_window() {
        let mut t = UeTracker::new();
        let r = Rnti(0x4700);
        t.note_candidate(r, 10, 3, 100, 64);
        t.note_candidate(r, 20, 3, 100, 64);
        // Third sighting arrives after the first two lapsed: still pending,
        // and only three fresh sightings inside one window admit.
        assert_eq!(t.note_candidate(r, 150, 3, 100, 64).0, Admission::Pending);
        assert_eq!(t.note_candidate(r, 160, 3, 100, 64).0, Admission::Pending);
        assert_eq!(t.note_candidate(r, 170, 3, 100, 64).0, Admission::Admit);
    }

    #[test]
    fn lapsed_probation_is_quarantined_and_reappearance_counted() {
        let mut t = UeTracker::new();
        let ghost = Rnti(0x4800);
        t.note_candidate(ghost, 10, 3, 100, 64);
        assert!(
            t.expire_probation(50, 100, 64).is_empty(),
            "still in window"
        );
        assert_eq!(t.expire_probation(200, 100, 64), vec![ghost]);
        assert!(t.is_quarantined(ghost));
        assert_eq!(t.quarantine_len(), 1);
        assert_eq!(t.quarantine_reappearances(ghost), Some(0));
        // The ghost keeps reappearing: cheap counter bump, never probation.
        assert_eq!(
            t.note_candidate(ghost, 300, 3, 100, 64).0,
            Admission::Quarantined
        );
        assert_eq!(
            t.note_candidate(ghost, 301, 3, 100, 64).0,
            Admission::Quarantined
        );
        assert_eq!(t.quarantine_reappearances(ghost), Some(2));
        assert!(!t.is_probationary(ghost));
    }

    #[test]
    fn probation_flood_is_bounded_with_counted_displacement() {
        let mut t = UeTracker::new();
        let mut displaced = 0usize;
        for i in 0..200u16 {
            let (_, d) = t.note_candidate(Rnti(0x4000 + i), u64::from(i), 3, 1_000, 64);
            displaced += usize::from(d.is_some());
        }
        assert!(t.probation_rntis().len() <= PROBATION_MAX + 1);
        assert_eq!(displaced + t.probation_rntis().len(), 200);
        assert_eq!(t.quarantine_len(), 64, "ledger bounded");
        assert!(t.quarantine_evictions > 0, "evictions are counted");
    }

    #[test]
    fn promote_clears_probation_and_quarantine() {
        let mut t = UeTracker::new();
        let r = Rnti(0x4900);
        t.note_candidate(r, 10, 5, 100, 64);
        t.expire_probation(500, 100, 64);
        assert!(t.is_quarantined(r));
        // A full RACH procedure (RAR + MSG 4) later proves the UE real.
        t.promote(r, 600, rrc());
        assert!(!t.is_quarantined(r));
        assert!(t.contains(r));
    }

    #[test]
    fn admission_state_survives_aux_round_trip() {
        let mut t = UeTracker::new();
        t.note_candidate(Rnti(0x4A00), 10, 3, 100, 64);
        t.note_candidate(Rnti(0x4A01), 12, 3, 100, 64);
        t.expire_probation(500, 100, 64); // both quarantined
        t.note_candidate(Rnti(0x4A00), 600, 3, 100, 64); // reappearance
        t.note_candidate(Rnti(0x4B00), 610, 3, 100, 64); // fresh probation
        let aux = t.aux_state();
        let mut back = UeTracker::new();
        back.set_aux(&aux);
        assert_eq!(back.aux_state(), aux);
        assert!(back.is_quarantined(Rnti(0x4A00)));
        assert_eq!(back.quarantine_reappearances(Rnti(0x4A00)), Some(1));
        assert!(back.is_probationary(Rnti(0x4B00)));
    }

    #[test]
    fn pre_hardening_aux_json_still_deserialises() {
        // A PR 4 era snapshot has no probation/quarantine fields.
        let old = r#"{"pending_tc":[],"recently_expired":[],"cached_rrc":null,"ever_seen":[],"total_discovered":0}"#;
        let aux: TrackerAux = serde_json::from_str(old).expect("defaults fill in");
        assert!(aux.probation.is_empty());
        assert!(aux.quarantine.is_empty());
        assert_eq!(aux.quarantine_evictions, 0);
    }

    #[test]
    fn rntis_are_sorted() {
        let mut t = UeTracker::new();
        for r in [9u16, 3, 7] {
            t.promote(Rnti(r), 0, rrc());
        }
        assert_eq!(t.rntis(), vec![Rnti(3), Rnti(7), Rnti(9)]);
    }
}
