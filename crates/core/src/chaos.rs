//! Composed-chaos engine: one seeded schedule arms any subset of the
//! repo's fault classes — impairments × overload × storage faults ×
//! clock drift × hostile air × kill-9 × hangs — over a single timeline,
//! while [`InvariantMonitor`]s evaluate the system's promises
//! continuously and record the first slot at which one breaks.
//!
//! PRs 1–9 injected and gated each fault class in isolation; production
//! failures compose. The pieces here are deliberately split by trust
//! domain:
//!
//! - [`ChaosSchedule`] is the seeded timeline. [`ChaosSchedule::compose`]
//!   derives deterministic fault placements from (seed, horizon, armed
//!   classes), so a failing soak reproduces bit-for-bit from its seed.
//! - [`ChaosChildPlan`] is the slice of the schedule the *supervised
//!   child process* executes against itself (scripted hangs, journal
//!   wedges, overload dwell, storage fault windows), written to
//!   [`CHAOS_PLAN_FILE`] in the session directory and loaded by
//!   [`run_child`](crate::supervise::run_child). Parent-side faults
//!   (kill-9, hostile air, impairments, clock) never go in the plan —
//!   the child must not know when it is about to be shot.
//! - [`InvariantMonitor`]s watch the supervised pipe traffic
//!   ([`ChaosObs`]) and fleet rollups, flagging the first violation with
//!   slot + context instead of a bare boolean.
//! - [`drive_supervised`] is the parent-side soak loop: it feeds a
//!   capture source through a [`Supervisor`], fires scripted kills,
//!   times hang detection, and keeps the honest per-slot book of which
//!   slots remain claimable for byte parity.

use crate::fleet::FleetSnapshot;
use crate::observe::Capture;
use crate::persist::FaultKind;
use crate::scope::SyncState;
use crate::supervise::{RestartCause, SlotOutcome, Supervisor};
use nr_phy::types::Rnti;
use nr_radio::impairment::ImpairmentSchedule;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Name of the child-side chaos plan file in the session directory.
/// Absent in normal runs; when present,
/// [`run_child`](crate::supervise::run_child) arms the scripted faults it
/// describes.
pub const CHAOS_PLAN_FILE: &str = "chaos_plan.json";

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Hang injection
// ---------------------------------------------------------------------------

/// Where a scripted hang wedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HangTarget {
    /// The supervised child's slot loop stops dead — no acks, no
    /// heartbeats. The supervisor must classify it as a hang within
    /// `hang_deadline` and force-kill.
    SlotLoop,
    /// The child's journal-writer thread wedges while the slot loop stays
    /// live: the durability ladder must demote honestly while batches
    /// back up, and re-promote after the wedge.
    JournalWriter,
    /// A fleet shard's engine wedges mid-slot; the watchdog must fence it
    /// and siblings must not stall (bulkhead isolation).
    FleetShard(usize),
}

impl HangTarget {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            HangTarget::SlotLoop => "slot_loop",
            HangTarget::JournalWriter => "journal_writer",
            HangTarget::FleetShard(_) => "fleet_shard",
        }
    }
}

/// One scripted hang: wedge `target` for `duration_ms` when the slot
/// clock reaches `slot`. Keyed on the *fed* slot sequence, so a hang that
/// got its process killed never re-fires after the warm restart — the
/// parent has already moved past the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HangPoint {
    /// Fed slot at which the wedge starts.
    pub slot: u64,
    /// What wedges.
    pub target: HangTarget,
    /// How long it stays wedged.
    pub duration_ms: u64,
}

/// A scripted set of [`HangPoint`]s — the seeded hang injector, shaped
/// like the other fault schedules ([`StorageFaultSchedule`],
/// `ImpairmentSchedule`): build once, hand to the engine.
///
/// [`StorageFaultSchedule`]: crate::persist::StorageFaultSchedule
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HangSchedule {
    /// The scripted hangs, in no particular order.
    pub hangs: Vec<HangPoint>,
}

impl HangSchedule {
    /// An empty schedule.
    pub fn new() -> HangSchedule {
        HangSchedule::default()
    }

    /// Wedge the supervised child's slot loop at `slot` for `ms`.
    pub fn wedge_slot_loop(mut self, slot: u64, ms: u64) -> Self {
        self.hangs.push(HangPoint {
            slot,
            target: HangTarget::SlotLoop,
            duration_ms: ms,
        });
        self
    }

    /// Wedge the child's journal-writer thread at `slot` for `ms`.
    pub fn wedge_journal_writer(mut self, slot: u64, ms: u64) -> Self {
        self.hangs.push(HangPoint {
            slot,
            target: HangTarget::JournalWriter,
            duration_ms: ms,
        });
        self
    }

    /// Wedge fleet shard `shard` at `slot` for `ms`.
    pub fn wedge_fleet_shard(mut self, shard: usize, slot: u64, ms: u64) -> Self {
        self.hangs.push(HangPoint {
            slot,
            target: HangTarget::FleetShard(shard),
            duration_ms: ms,
        });
        self
    }
}

// ---------------------------------------------------------------------------
// Child-side plan
// ---------------------------------------------------------------------------

/// A storage fault armed while the child's fed slot is inside
/// `[from_slot, until_slot)` (every matching backend operation faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageWindow {
    /// Fault class to arm.
    pub kind: FaultKind,
    /// First fed slot of the window.
    pub from_slot: u64,
    /// First fed slot past the window.
    pub until_slot: u64,
}

/// Scripted decode overload: every slot in `[from_slot, until_slot)`
/// dwells an extra `dwell_us` — busy, not wedged, so heartbeats keep
/// flowing and the supervisor must *not* read it as a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadWindow {
    /// First fed slot of the window.
    pub from_slot: u64,
    /// First fed slot past the window.
    pub until_slot: u64,
    /// Extra per-slot dwell in microseconds.
    pub dwell_us: u64,
}

/// The child-side slice of a chaos run: scripted hangs, storage windows,
/// and overload dwell, written to [`CHAOS_PLAN_FILE`] by the parent and
/// loaded by [`run_child`](crate::supervise::run_child) on every
/// (re)start. Slot keys are *fed* slot sequence numbers, so points the
/// run already passed never re-fire after a warm restart.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosChildPlan {
    /// Seed for the child's [`FaultyBackend`](crate::persist::FaultyBackend).
    pub seed: u64,
    /// Scripted hangs (only [`HangTarget::SlotLoop`] and
    /// [`HangTarget::JournalWriter`] are meaningful child-side).
    pub hangs: Vec<HangPoint>,
    /// Slot-windowed storage faults.
    pub storage_windows: Vec<StorageWindow>,
    /// Scripted overload dwell.
    pub overload_windows: Vec<OverloadWindow>,
}

impl ChaosChildPlan {
    /// Serialize for [`CHAOS_PLAN_FILE`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("chaos plan serializes")
    }

    /// Parse a plan written by [`ChaosChildPlan::to_json`].
    pub fn from_json(s: &str) -> Result<ChaosChildPlan, serde_json::Error> {
        serde_json::from_str(s)
    }
}

// ---------------------------------------------------------------------------
// Composed schedule
// ---------------------------------------------------------------------------

/// Which fault classes a composed schedule arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosArms {
    /// Front-end impairments (drop probability + a scripted outage).
    pub impairments: bool,
    /// Scripted decode overload (busy-not-hung dwell windows).
    pub overload: bool,
    /// Storage fault windows against the child's journal.
    pub storage: bool,
    /// Oscillator error on the sniffer front end (drift + a timing step).
    pub clock: bool,
    /// Hostile-air windows (ghost DCIs, malformed fields, SIB spoof).
    pub hostile: bool,
    /// Scripted SIGKILLs of the supervised child.
    pub kill9: bool,
    /// Scripted hangs (slot loop, journal writer, fleet shard).
    pub hangs: bool,
}

impl ChaosArms {
    /// Everything armed — the full-composition soak.
    pub fn all() -> ChaosArms {
        ChaosArms {
            impairments: true,
            overload: true,
            storage: true,
            clock: true,
            hostile: true,
            kill9: true,
            hangs: true,
        }
    }

    /// Nothing armed — the clean baseline the soak is compared against.
    pub fn none() -> ChaosArms {
        ChaosArms {
            impairments: false,
            overload: false,
            storage: false,
            clock: false,
            hostile: false,
            kill9: false,
            hangs: false,
        }
    }
}

/// A fully composed, seeded chaos timeline over `horizon_slots` of feed.
/// Every placement is a deterministic function of (seed, horizon, arms):
/// re-running a failing soak with its reported seed reproduces the exact
/// fault sequence.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// The seed everything derives from.
    pub seed: u64,
    /// Timeline length in fed slots.
    pub horizon_slots: u64,
    /// Parent slots at which the supervisor SIGKILLs the child.
    pub kill_slots: Vec<u64>,
    /// Hostile-air windows `[from, until)` on the parent's gNB.
    pub hostile_windows: Vec<(u64, u64)>,
    /// Every scripted hang (child- and fleet-targeted).
    pub hangs: HangSchedule,
    /// Child-side storage fault windows.
    pub storage_windows: Vec<StorageWindow>,
    /// Child-side overload dwell windows.
    pub overload_windows: Vec<OverloadWindow>,
    /// Random per-slot front-end drop probability.
    pub impair_drop_prob: f64,
    /// Scripted front-end outages `[from, until)`.
    pub impair_outages: Vec<(u64, u64)>,
    /// Static oscillator offset (ppm); 0 disables the clock model.
    pub clock_static_ppm: f64,
    /// Ageing drift (ppm per second).
    pub clock_drift_ppm_per_s: f64,
    /// One scripted timing step `(slot, µs)`.
    pub clock_step: Option<(u64, f64)>,
}

impl ChaosSchedule {
    /// Compose a timeline: deterministic placements (with small seeded
    /// jitter so distinct seeds produce distinct alignments) for every
    /// armed class, spread so the composition windows overlap — storage
    /// faults land near the journal wedge, hostility spans a kill, the
    /// clock step lands inside the hostile window.
    pub fn compose(seed: u64, horizon_slots: u64, arms: ChaosArms) -> ChaosSchedule {
        let h = horizon_slots.max(1_000);
        let mut rng = seed ^ 0x43_48_41_4F_53_21; // "CHAOS!"
        let mut jitter = |span: u64| splitmix64(&mut rng) % span.max(1);
        let at = |frac_milli: u64| h * frac_milli / 1000;

        let mut s = ChaosSchedule {
            seed,
            horizon_slots: h,
            kill_slots: Vec::new(),
            hostile_windows: Vec::new(),
            hangs: HangSchedule::new(),
            storage_windows: Vec::new(),
            overload_windows: Vec::new(),
            impair_drop_prob: 0.0,
            impair_outages: Vec::new(),
            clock_static_ppm: 0.0,
            clock_drift_ppm_per_s: 0.0,
            clock_step: None,
        };
        if arms.impairments {
            s.impair_drop_prob = 0.02;
            let start = at(320) + jitter(40);
            s.impair_outages.push((start, start + 120));
        }
        if arms.overload {
            let start = at(400) + jitter(40);
            s.overload_windows.push(OverloadWindow {
                from_slot: start,
                until_slot: start + h / 25,
                dwell_us: 1_200,
            });
        }
        if arms.storage {
            let w1 = at(150) + jitter(30);
            s.storage_windows.push(StorageWindow {
                kind: FaultKind::WriteEio,
                from_slot: w1,
                until_slot: w1 + h / 33,
            });
            let w2 = at(550) + jitter(30);
            s.storage_windows.push(StorageWindow {
                kind: FaultKind::FsyncEio,
                from_slot: w2,
                until_slot: w2 + h / 50,
            });
        }
        if arms.clock {
            s.clock_static_ppm = 5.0;
            s.clock_drift_ppm_per_s = 0.02;
            s.clock_step = Some((at(620) + jitter(40), 1.5));
        }
        if arms.hostile {
            s.hostile_windows.push((at(480) + jitter(30), at(680)));
        }
        if arms.kill9 {
            // ≥ 2 kills: one inside the hostile window, one late.
            s.kill_slots.push(at(500) + jitter(30));
            s.kill_slots.push(at(800) + jitter(40));
        }
        if arms.hangs {
            // Slot-loop hang long enough that any sane hang_deadline
            // (default 2 s) expires well before the wedge releases.
            s.hangs = HangSchedule::new()
                .wedge_slot_loop(at(350) + jitter(30), 8_000)
                .wedge_journal_writer(at(560) + jitter(30), 300)
                .wedge_fleet_shard(1, at(450) + jitter(30), 2_500);
        }
        s
    }

    /// The slice of this schedule the supervised child executes against
    /// itself (everything except fleet-shard hangs and parent-side
    /// faults).
    pub fn child_plan(&self) -> ChaosChildPlan {
        ChaosChildPlan {
            seed: self.seed,
            hangs: self
                .hangs
                .hangs
                .iter()
                .filter(|p| !matches!(p.target, HangTarget::FleetShard(_)))
                .copied()
                .collect(),
            storage_windows: self.storage_windows.clone(),
            overload_windows: self.overload_windows.clone(),
        }
    }

    /// True when the child-side plan has anything to do (worth writing
    /// [`CHAOS_PLAN_FILE`] at all).
    pub fn has_child_faults(&self) -> bool {
        let p = self.child_plan();
        !(p.hangs.is_empty() && p.storage_windows.is_empty() && p.overload_windows.is_empty())
    }

    /// The parent-observer impairment schedule, if impairments are armed.
    pub fn impairment_schedule(&self) -> Option<ImpairmentSchedule> {
        if self.impair_drop_prob == 0.0 && self.impair_outages.is_empty() {
            return None;
        }
        let mut sched =
            ImpairmentSchedule::new(self.seed ^ 0x1337).with_drop_prob(self.impair_drop_prob);
        for &(a, b) in &self.impair_outages {
            sched = sched.with_outage(a..b);
        }
        Some(sched)
    }

    /// The scripted slot-loop hang at `slot`, if any.
    pub fn slot_loop_hang_at(&self, slot: u64) -> Option<HangPoint> {
        self.hangs
            .hangs
            .iter()
            .find(|p| p.slot == slot && p.target == HangTarget::SlotLoop)
            .copied()
    }
}

// ---------------------------------------------------------------------------
// Invariant monitors
// ---------------------------------------------------------------------------

/// A recorded invariant breach: first slot it was seen at, plus context.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Slot of first violation.
    pub slot: u64,
    /// What was observed vs what was promised.
    pub context: String,
}

/// What a monitor sees each fed slot of a supervised chaos run.
pub struct ChaosObs<'a> {
    /// Fed slot sequence.
    pub slot: u64,
    /// The capture fed this slot was a front-end drop (outage, stall,
    /// impairment) — the *parent* knows this; the monitors use it to
    /// check the child never masks drops.
    pub fed_drop: bool,
    /// Hostile ghost C-RNTIs on the air this run (empty when hostility is
    /// disarmed).
    pub ghosts: &'a [Rnti],
    /// What happened to the slot.
    pub outcome: &'a SlotOutcome,
}

/// A continuously evaluated invariant. Implementations latch the *first*
/// violation ([`Violation`]) and ignore everything after — the first
/// broken slot is the debuggable one.
pub trait InvariantMonitor {
    /// Stable snake_case monitor name for reports.
    fn name(&self) -> &'static str;
    /// Observe one supervised slot. Default: not interested.
    fn on_slot(&mut self, _obs: &ChaosObs) {}
    /// Observe one fleet rollup (fleet-leg monitors). Default: not
    /// interested.
    fn on_fleet(&mut self, _slot: u64, _snap: &FleetSnapshot) {}
    /// The latched first violation, if any.
    fn violation(&self) -> Option<&Violation>;
}

/// Final per-monitor status for reports.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorStatus {
    /// Monitor name.
    pub name: String,
    /// Green?
    pub ok: bool,
    /// The first violation when not green.
    pub violation: Option<Violation>,
}

/// Collapse a monitor set into report rows.
pub fn monitor_statuses(monitors: &[Box<dyn InvariantMonitor>]) -> Vec<MonitorStatus> {
    monitors
        .iter()
        .map(|m| MonitorStatus {
            name: m.name().to_string(),
            ok: m.violation().is_none(),
            violation: m.violation().cloned(),
        })
        .collect()
}

/// Never-go-dark: while the child is alive and acking decodable slots,
/// its cumulative SI-DCI count must keep advancing — broadcast traffic is
/// always on the air, so a scope that stops seeing SI has gone dark
/// regardless of what else it claims.
pub struct NeverGoDarkMonitor {
    window: u64,
    last_si: u64,
    stagnant: u64,
    violation: Option<Violation>,
}

impl NeverGoDarkMonitor {
    /// Violation after `window` consecutive acked, non-dropped slots with
    /// no SI progress. Must comfortably exceed the re-sync bound (~800
    /// slots) so post-restart reacquisition is not read as darkness.
    pub fn new(window: u64) -> Self {
        NeverGoDarkMonitor {
            window: window.max(1),
            last_si: 0,
            stagnant: 0,
            violation: None,
        }
    }
}

impl InvariantMonitor for NeverGoDarkMonitor {
    fn name(&self) -> &'static str {
        "never_go_dark"
    }

    fn on_slot(&mut self, obs: &ChaosObs) {
        if self.violation.is_some() {
            return;
        }
        let SlotOutcome::Acked(ack) = obs.outcome else {
            return;
        };
        if obs.fed_drop {
            return; // nothing decodable was offered
        }
        if ack.si_dcis > self.last_si {
            self.last_si = ack.si_dcis;
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
            if self.stagnant > self.window {
                self.violation = Some(Violation {
                    slot: obs.slot,
                    context: format!(
                        "no SI-DCI progress over {} decodable acked slots (stuck at {})",
                        self.stagnant, self.last_si
                    ),
                });
            }
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// Bounded loss window: whenever the child *claims* a bounded loss window
/// it must honour it (durable watermark within the bound of the
/// processing watermark), and the claim itself must be honest — a
/// `NonDurable` child promising a bound, or a healthy one promising
/// unbounded loss, is lying to its operator.
pub struct BoundedLossWindowMonitor {
    violation: Option<Violation>,
}

impl Default for BoundedLossWindowMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundedLossWindowMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        BoundedLossWindowMonitor { violation: None }
    }
}

impl InvariantMonitor for BoundedLossWindowMonitor {
    fn name(&self) -> &'static str {
        "bounded_loss_window"
    }

    fn on_slot(&mut self, obs: &ChaosObs) {
        if self.violation.is_some() {
            return;
        }
        let SlotOutcome::Acked(ack) = obs.outcome else {
            return;
        };
        let non_durable = ack.durability_rung == 2;
        match ack.loss_window {
            Some(w) => {
                if non_durable {
                    self.violation = Some(Violation {
                        slot: obs.slot,
                        context: format!(
                            "NonDurable child still promising a bounded loss window ({w})"
                        ),
                    });
                } else {
                    let lag = ack.watermark.saturating_sub(ack.durable);
                    if lag > w {
                        self.violation = Some(Violation {
                            slot: obs.slot,
                            context: format!(
                                "durable watermark lags {} slots behind, promised bound {w}",
                                lag
                            ),
                        });
                    }
                }
            }
            None => {
                if !non_durable {
                    self.violation = Some(Violation {
                        slot: obs.slot,
                        context: format!(
                            "child on durability rung {} reported an unbounded loss window",
                            ack.durability_rung
                        ),
                    });
                }
            }
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// Watermark monotonicity: processing and durable watermarks never move
/// backwards — not per incarnation, across the whole run, warm restarts
/// included — and the durable watermark never overtakes processing.
pub struct WatermarkMonotonicityMonitor {
    last_watermark: u64,
    last_durable: u64,
    violation: Option<Violation>,
}

impl Default for WatermarkMonotonicityMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl WatermarkMonotonicityMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        WatermarkMonotonicityMonitor {
            last_watermark: 0,
            last_durable: 0,
            violation: None,
        }
    }
}

impl InvariantMonitor for WatermarkMonotonicityMonitor {
    fn name(&self) -> &'static str {
        "watermark_monotonicity"
    }

    fn on_slot(&mut self, obs: &ChaosObs) {
        if self.violation.is_some() {
            return;
        }
        let SlotOutcome::Acked(ack) = obs.outcome else {
            return;
        };
        let fail = if ack.watermark < self.last_watermark {
            Some(format!(
                "processing watermark regressed {} -> {}",
                self.last_watermark, ack.watermark
            ))
        } else if ack.durable < self.last_durable {
            Some(format!(
                "durable watermark regressed {} -> {}",
                self.last_durable, ack.durable
            ))
        } else if ack.durable > ack.watermark {
            Some(format!(
                "durable watermark {} ahead of processing watermark {}",
                ack.durable, ack.watermark
            ))
        } else {
            None
        };
        if let Some(context) = fail {
            self.violation = Some(Violation {
                slot: obs.slot,
                context,
            });
            return;
        }
        self.last_watermark = ack.watermark;
        self.last_durable = ack.durable;
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// No ghost admissions: hostile ghost C-RNTIs must never show up in the
/// child's tracked set, no matter what else is failing around it.
pub struct NoGhostAdmissionsMonitor {
    ghosts: Vec<Rnti>,
    violation: Option<Violation>,
}

impl NoGhostAdmissionsMonitor {
    /// Watch for these ghosts.
    pub fn new(ghosts: Vec<Rnti>) -> Self {
        NoGhostAdmissionsMonitor {
            ghosts,
            violation: None,
        }
    }
}

impl InvariantMonitor for NoGhostAdmissionsMonitor {
    fn name(&self) -> &'static str {
        "no_ghost_admissions"
    }

    fn on_slot(&mut self, obs: &ChaosObs) {
        if self.violation.is_some() {
            return;
        }
        let SlotOutcome::Acked(ack) = obs.outcome else {
            return;
        };
        if let Some(g) = self.ghosts.iter().find(|g| ack.tracked.contains(g)) {
            self.violation = Some(Violation {
                slot: obs.slot,
                context: format!("hostile ghost RNTI {g} admitted to the tracked set"),
            });
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// Clock-mask asymmetry: the timing-recovery lock ladder may mask
/// *decode silence*, never front-end *drops* (DESIGN.md §clock). If the
/// parent feeds a long unbroken run of dropped captures and the child
/// still reports `Synced` at the end of it, drops are being masked —
/// real outages would be undetectable exactly when the clock loop is most
/// confused.
pub struct ClockMaskAsymmetryMonitor {
    run_len: u64,
    consecutive_drops: u64,
    violation: Option<Violation>,
}

impl ClockMaskAsymmetryMonitor {
    /// Violation when `run_len` consecutive dropped slots leave sync
    /// untouched. Must exceed the sync-health demotion threshold
    /// (default 120 slots) with margin.
    pub fn new(run_len: u64) -> Self {
        ClockMaskAsymmetryMonitor {
            run_len: run_len.max(1),
            consecutive_drops: 0,
            violation: None,
        }
    }
}

impl InvariantMonitor for ClockMaskAsymmetryMonitor {
    fn name(&self) -> &'static str {
        "clock_mask_asymmetry"
    }

    fn on_slot(&mut self, obs: &ChaosObs) {
        if self.violation.is_some() {
            return;
        }
        let SlotOutcome::Acked(ack) = obs.outcome else {
            // A down child resets the streak: nothing was acked.
            self.consecutive_drops = 0;
            return;
        };
        if obs.fed_drop {
            self.consecutive_drops += 1;
            if self.consecutive_drops >= self.run_len && ack.sync == SyncState::Synced {
                self.violation = Some(Violation {
                    slot: obs.slot,
                    context: format!(
                        "sync still Synced after {} consecutive front-end drops — \
                         drops masked by the clock ladder",
                        self.consecutive_drops
                    ),
                });
            }
        } else {
            self.consecutive_drops = 0;
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// Bulkhead isolation: while any shard is unhealthy (faulted/wedged or
/// breaker-parked), every *other* cell's slot count must keep advancing
/// between consecutive rollups. One wedged shard starving its siblings is
/// exactly the failure bulkheads exist to prevent.
/// One shard's rollup sample: (cell name, slots advanced, health label).
type ShardSample = (String, u64, String);

pub struct BulkheadIsolationMonitor {
    min_gap_slots: u64,
    prev: Option<(u64, Vec<ShardSample>)>,
    violation: Option<Violation>,
}

impl BulkheadIsolationMonitor {
    /// Compare rollups at least `min_gap_slots` of feed apart (closer
    /// samples legitimately show no progress on an idle queue).
    pub fn new(min_gap_slots: u64) -> Self {
        BulkheadIsolationMonitor {
            min_gap_slots: min_gap_slots.max(1),
            prev: None,
            violation: None,
        }
    }
}

impl InvariantMonitor for BulkheadIsolationMonitor {
    fn name(&self) -> &'static str {
        "bulkhead_isolation"
    }

    fn on_fleet(&mut self, slot: u64, snap: &FleetSnapshot) {
        if self.violation.is_some() {
            return;
        }
        let now: Vec<(String, u64, String)> = snap
            .cells
            .iter()
            .map(|c| (c.name.clone(), c.slots, c.health.clone()))
            .collect();
        if let Some((prev_slot, prev_cells)) = &self.prev {
            if slot.saturating_sub(*prev_slot) >= self.min_gap_slots {
                let any_unhealthy = prev_cells.iter().any(|(_, _, h)| h != "healthy")
                    || now.iter().any(|(_, _, h)| h != "healthy");
                if any_unhealthy {
                    for ((name, slots_now, health_now), (_, slots_prev, health_prev)) in
                        now.iter().zip(prev_cells.iter())
                    {
                        // Only healthy siblings are held to the progress
                        // bar — the wedged shard itself is *supposed* to
                        // be fenced and still.
                        if health_now == "healthy"
                            && health_prev == "healthy"
                            && slots_now <= slots_prev
                        {
                            self.violation = Some(Violation {
                                slot,
                                context: format!(
                                    "healthy sibling {name} made no progress \
                                     ({slots_prev} slots) across a wedge window"
                                ),
                            });
                            return;
                        }
                    }
                }
                self.prev = Some((slot, now));
            }
        } else {
            self.prev = Some((slot, now));
        }
    }

    fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

/// The standard supervised-leg monitor set (everything except the
/// fleet-leg bulkhead monitor, which the caller adds when it drives a
/// fleet).
pub fn standard_monitors(ghosts: Vec<Rnti>) -> Vec<Box<dyn InvariantMonitor>> {
    vec![
        Box::new(NeverGoDarkMonitor::new(2_000)),
        Box::new(BoundedLossWindowMonitor::new()),
        Box::new(WatermarkMonotonicityMonitor::new()),
        Box::new(NoGhostAdmissionsMonitor::new(ghosts)),
        Box::new(ClockMaskAsymmetryMonitor::new(400)),
    ]
}

// ---------------------------------------------------------------------------
// Supervised-leg driver
// ---------------------------------------------------------------------------

/// One detected hang, with how it was handled.
#[derive(Debug, Clone, Serialize)]
pub struct HangObservation {
    /// Fed slot the hang was scripted at.
    pub slot: u64,
    /// Wall-clock ms from feeding the hung slot to the supervisor giving
    /// up on it (the hang-detection latency).
    pub detect_ms: u64,
}

/// What [`drive_supervised`] measured.
#[derive(Debug, Clone, Serialize)]
pub struct DriveStats {
    /// Slots fed.
    pub slots: u64,
    /// Slots acked by a live child.
    pub acked: u64,
    /// Slots lost while the child was down or backing off.
    pub lost_child_down: u64,
    /// Slots lost while parked lame-duck behind an open breaker.
    pub lost_lame_duck: u64,
    /// Scripted slot-loop hangs and their detection latencies.
    pub hang_observations: Vec<HangObservation>,
    /// Whether the final acked slot reported `Synced`.
    pub final_sync_synced: bool,
    /// Per-slot parity claimability: acked, synced, not front-end
    /// dropped, and not in a later-lost (never-durable) tail.
    pub observed: Vec<bool>,
}

/// Drive one supervised chaos leg: feed `schedule.horizon_slots` captures
/// from `source` through `sup`, firing scripted kills, timing scripted
/// slot-loop hang detection, and evaluating `monitors` continuously.
///
/// `source(seq)` produces the capture for slot `seq` — the caller owns
/// the gNB/observer wiring (and arms hostile windows itself, since the
/// air interface lives on its side).
///
/// The returned `observed` book already excludes every warm restart's
/// lost tail (acked-but-not-durable slots the restarted child has no
/// memory of), so byte parity over its ranges never claims a byte the
/// system does not hold.
pub fn drive_supervised(
    sup: &mut Supervisor,
    schedule: &ChaosSchedule,
    ghosts: &[Rnti],
    monitors: &mut [Box<dyn InvariantMonitor>],
    mut source: impl FnMut(u64) -> Capture,
) -> DriveStats {
    let slots = schedule.horizon_slots;
    let mut stats = DriveStats {
        slots,
        acked: 0,
        lost_child_down: 0,
        lost_lame_duck: 0,
        hang_observations: Vec::new(),
        final_sync_synced: false,
        observed: vec![false; slots as usize],
    };
    let mut restarts_seen = sup.restart_log().len();
    for seq in 0..slots {
        if schedule.kill_slots.contains(&seq) {
            sup.kill_now(seq);
        }
        let cap = source(seq);
        let fed_drop = matches!(cap, Capture::Dropped(_));
        let hang_here = schedule.slot_loop_hang_at(seq);
        let hangs_before = sup.stats().hangs_detected;
        let fed_at = Instant::now();
        let outcome = sup.feed_slot(seq, &cap);
        // Only a *classified* hang counts: a scripted hang slot landing
        // inside a kill's backoff window is Lost(ChildDown) without any
        // detection having happened.
        if hang_here.is_some() && sup.stats().hangs_detected > hangs_before {
            stats.hang_observations.push(HangObservation {
                slot: seq,
                detect_ms: fed_at.elapsed().as_millis() as u64,
            });
        }
        match &outcome {
            SlotOutcome::Acked(ack) => {
                stats.acked += 1;
                stats.final_sync_synced = ack.sync == SyncState::Synced;
                stats.observed[seq as usize] = ack.sync == SyncState::Synced && !fed_drop;
            }
            SlotOutcome::Lost(crate::supervise::LostCause::ChildDown) => {
                stats.lost_child_down += 1;
            }
            SlotOutcome::Lost(crate::supervise::LostCause::LameDuck) => {
                stats.lost_lame_duck += 1;
            }
        }
        // A warm restart happened somewhere behind this slot: un-claim the
        // lost tail — slots the dead child acked but never made durable.
        let log = sup.restart_log();
        for ev in &log[restarts_seen..] {
            if ev.cause != RestartCause::Initial {
                let from = ev.hello.report.resumed_slot.min(slots);
                let until = ev.at_seq.min(slots);
                for s in from..until {
                    stats.observed[s as usize] = false;
                }
            }
        }
        restarts_seen = log.len();
        let obs = ChaosObs {
            slot: seq,
            fed_drop,
            ghosts,
            outcome: &outcome,
        };
        for m in monitors.iter_mut() {
            m.on_slot(&obs);
        }
    }
    stats
}

/// Compress a per-slot flag vector into maximal half-open ranges (the
/// shape [`WireMsg::Report`](crate::supervise::WireMsg) wants).
pub fn ranges_of(flags: &[bool]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut start: Option<u64> = None;
    for (i, &on) in flags.iter().enumerate() {
        match (on, start) {
            (true, None) => start = Some(i as u64),
            (false, Some(s)) => {
                out.push((s, i as u64));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push((s, flags.len() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_is_deterministic_per_seed() {
        let a = ChaosSchedule::compose(7, 10_000, ChaosArms::all());
        let b = ChaosSchedule::compose(7, 10_000, ChaosArms::all());
        assert_eq!(a.kill_slots, b.kill_slots);
        assert_eq!(a.hangs, b.hangs);
        assert_eq!(a.storage_windows, b.storage_windows);
        let c = ChaosSchedule::compose(8, 10_000, ChaosArms::all());
        assert_ne!(
            (a.kill_slots, a.hangs),
            (c.kill_slots, c.hangs),
            "different seeds shift the timeline"
        );
    }

    #[test]
    fn compose_all_arms_every_class() {
        let s = ChaosSchedule::compose(1, 8_000, ChaosArms::all());
        assert!(s.kill_slots.len() >= 2, "acceptance: ≥ 2 kill-9s");
        assert!(!s.hostile_windows.is_empty());
        assert!(
            s.hangs
                .hangs
                .iter()
                .any(|p| p.target == HangTarget::SlotLoop),
            "acceptance: ≥ 1 scripted hang"
        );
        assert!(s
            .hangs
            .hangs
            .iter()
            .any(|p| p.target == HangTarget::JournalWriter));
        assert!(s.storage_windows.len() >= 2);
        assert!(!s.overload_windows.is_empty());
        assert!(s.impair_drop_prob > 0.0);
        assert!(s.clock_static_ppm != 0.0 && s.clock_step.is_some());
        // Everything scripted lands inside the horizon.
        let h = s.horizon_slots;
        assert!(s.kill_slots.iter().all(|&k| k < h));
        assert!(s.hangs.hangs.iter().all(|p| p.slot < h));
        assert!(s.storage_windows.iter().all(|w| w.until_slot <= h));
    }

    #[test]
    fn compose_none_arms_nothing() {
        let s = ChaosSchedule::compose(1, 8_000, ChaosArms::none());
        assert!(s.kill_slots.is_empty());
        assert!(s.hostile_windows.is_empty());
        assert!(s.hangs.hangs.is_empty());
        assert!(s.storage_windows.is_empty());
        assert!(s.overload_windows.is_empty());
        assert_eq!(s.impair_drop_prob, 0.0);
        assert!(!s.has_child_faults());
    }

    #[test]
    fn child_plan_excludes_fleet_hangs() {
        let s = ChaosSchedule::compose(3, 8_000, ChaosArms::all());
        let plan = s.child_plan();
        assert!(plan
            .hangs
            .iter()
            .all(|p| !matches!(p.target, HangTarget::FleetShard(_))));
        assert!(plan.hangs.len() < s.hangs.hangs.len());
        // Round-trips through the plan file format.
        let back = ChaosChildPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn ranges_of_compresses_flags() {
        assert_eq!(ranges_of(&[true, true, false, true]), vec![(0, 2), (3, 4)]);
        assert!(ranges_of(&[false, false]).is_empty());
    }

    #[test]
    fn watermark_monitor_catches_regression() {
        use crate::supervise::Ack;
        let mut m = WatermarkMonotonicityMonitor::new();
        let mut ack = Ack {
            seq: 0,
            watermark: 100,
            sync: SyncState::Synced,
            produced: 0,
            tracked: vec![],
            durable: 50,
            durability_rung: 0,
            loss_window: Some(80),
            si_dcis: 0,
        };
        let outcome = SlotOutcome::Acked(ack.clone());
        m.on_slot(&ChaosObs {
            slot: 0,
            fed_drop: false,
            ghosts: &[],
            outcome: &outcome,
        });
        assert!(m.violation().is_none());
        ack.watermark = 90; // regression
        let outcome = SlotOutcome::Acked(ack);
        m.on_slot(&ChaosObs {
            slot: 1,
            fed_drop: false,
            ghosts: &[],
            outcome: &outcome,
        });
        assert!(m.violation().is_some());
        assert_eq!(m.violation().unwrap().slot, 1);
    }

    #[test]
    fn loss_window_monitor_catches_dishonest_bound() {
        use crate::supervise::Ack;
        let mut m = BoundedLossWindowMonitor::new();
        let ack = Ack {
            seq: 0,
            watermark: 100,
            sync: SyncState::Synced,
            produced: 0,
            tracked: vec![],
            durable: 0,
            durability_rung: 2,    // NonDurable…
            loss_window: Some(80), // …yet promising a bound
            si_dcis: 0,
        };
        let outcome = SlotOutcome::Acked(ack);
        m.on_slot(&ChaosObs {
            slot: 5,
            fed_drop: false,
            ghosts: &[],
            outcome: &outcome,
        });
        assert!(m.violation().is_some());
    }
}
