//! Blind PDCCH decoding: turning an observed slot into decoded DCIs.
//!
//! The sniffer never knows which candidates are occupied. It scans every
//! aligned candidate position at every aggregation level (IQ fidelity) or
//! every captured codeword (message fidelity), and for each one tries, in
//! order (paper §3.1.2, §3.2.1):
//!
//! 1. **common-search-space hypotheses** — SI-RNTI, the RA-RNTIs of recent
//!    PRACH occasions, and any TC-RNTIs learned from RARs (all descrambled
//!    with the cell-scoped sequence), falling back to CRC-XOR RNTI
//!    recovery for MSG 4s whose RAR was missed;
//! 2. **known-UE hypotheses** — each tracked C-RNTI with its UE-specific
//!    descrambling.

use crate::metrics::{Counter, Metrics, Stage};
use crate::observe::ObservedDci;
use nr_phy::crc::{dci_check_crc, dci_recover_rnti};
use nr_phy::dci::{Dci, DciFormat, DciSizing};
use nr_phy::grid::ResourceGrid;
use nr_phy::pdcch::{
    extract_candidate, search_space_cinit, AggregationLevel, Coreset, SearchBudget,
};
use nr_phy::polar::PolarCode;
use nr_phy::sequence::gold_bits_cached;
use nr_phy::types::{Rnti, RntiType};
use std::sync::Arc;
use std::time::Instant;

/// One successfully decoded DCI.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedDci {
    /// The RNTI whose CRC validated (or was recovered).
    pub rnti: Rnti,
    /// Classification implied by which hypothesis matched.
    pub rnti_type: RntiType,
    /// Unpacked fields.
    pub dci: Dci,
    /// Aggregation level of the winning candidate.
    pub level: AggregationLevel,
    /// First CCE of the winning candidate.
    pub cce_start: usize,
}

/// The RNTI hypothesis sets for one slot.
#[derive(Debug, Clone, Default)]
pub struct Hypotheses {
    /// RA-RNTIs of PRACH occasions within the response window.
    pub ra_rntis: Vec<Rnti>,
    /// TC-RNTIs learned from decoded RARs.
    pub tc_rntis: Vec<Rnti>,
    /// Tracked C-RNTIs.
    pub c_rntis: Vec<Rnti>,
    /// Accept CRC-XOR-recovered TC-RNTIs not matching any pending RAR
    /// (the missed-RAR fallback).
    pub allow_recovery: bool,
    /// Skip the common-search-space pass entirely (set on worker shards
    /// other than the SIBs/RACH shard so the common hypotheses run once).
    pub skip_common: bool,
}

/// How much decode work one slot *offered* the pipeline, regardless of how
/// far each attempt got. The counts are deterministic for a given capture,
/// hypothesis set, and [`SearchBudget`] — the overload governor's
/// [`crate::governor::LoadModel`] maps them to a synthetic latency so the
/// ladder's dynamics are seed-reproducible in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeWork {
    /// Candidates (codewords or grid positions) scanned.
    pub candidates: usize,
    /// Candidates admitted into the UE-specific pass.
    pub ue_candidates: usize,
    /// UE-specific RNTI hypotheses offered (admitted candidates × tracked
    /// C-RNTIs).
    pub ue_hypotheses: usize,
    /// Candidates the search budget refused a UE-specific pass.
    pub pruned: usize,
    /// CRC-passing payloads rejected by stage-1 plausibility validation
    /// (see [`nr_phy::dci::DciReject`]) before any state was mutated.
    pub validation_rejects: usize,
}

impl DecodeWork {
    /// Accumulate another shard's work counts.
    pub fn absorb(&mut self, other: &DecodeWork) {
        self.candidates += other.candidates;
        self.ue_candidates += other.ue_candidates;
        self.ue_hypotheses += other.ue_hypotheses;
        self.pruned += other.pruned;
        self.validation_rejects += other.validation_rejects;
    }
}

/// Decoder context shared across a telemetry session.
#[derive(Debug, Clone)]
pub struct DecoderContext {
    /// The cell's CORESET (from the MIB).
    pub coreset: Coreset,
    /// Cell identity driving scrambling and DMRS.
    pub pci: u16,
    /// Common-search-space DCI sizing (initial BWP = CORESET 0).
    pub common_sizing: DciSizing,
    /// UE-specific DCI sizing (carrier BWP, from SIB1); `None` until SIB1
    /// is acquired.
    pub ue_sizing: Option<DciSizing>,
}

impl DecoderContext {
    fn sizes_for_common(&self) -> [usize; 2] {
        [
            self.common_sizing.payload_bits(DciFormat::Dl1_1),
            self.common_sizing.payload_bits(DciFormat::Ul0_1),
        ]
    }

    fn sizes_for_ue(&self) -> Option<[usize; 2]> {
        let s = self.ue_sizing?;
        Some([
            s.payload_bits(DciFormat::Dl1_1),
            s.payload_bits(DciFormat::Ul0_1),
        ])
    }
}

/// Decode all DCIs in a message-fidelity capture.
pub fn decode_message_slot(
    ctx: &DecoderContext,
    observed: &[ObservedDci],
    hyp: &Hypotheses,
) -> Vec<DecodedDci> {
    decode_message_slot_metered(ctx, observed, hyp, None)
}

/// [`decode_message_slot`] with pipeline instrumentation: the whole-slot
/// codeword scan is the PDCCH search stage; each codeword's hypothesis
/// testing is a DCI-decode observation.
pub fn decode_message_slot_metered(
    ctx: &DecoderContext,
    observed: &[ObservedDci],
    hyp: &Hypotheses,
    metrics: Option<&Arc<Metrics>>,
) -> Vec<DecodedDci> {
    decode_message_slot_budgeted(ctx, observed, hyp, SearchBudget::unlimited(), metrics).0
}

/// [`decode_message_slot_metered`] under a [`SearchBudget`]: the common
/// pass (SI/RA/TC + MSG 4 recovery) always runs in full; the budget gates
/// only the UE-specific pass. Returns the decoded DCIs plus the slot's
/// offered-work counts for the overload governor.
pub fn decode_message_slot_budgeted(
    ctx: &DecoderContext,
    observed: &[ObservedDci],
    hyp: &Hypotheses,
    budget: SearchBudget,
    metrics: Option<&Arc<Metrics>>,
) -> (Vec<DecodedDci>, DecodeWork) {
    // Per-candidate RAII timers cost two clock reads plus an Arc
    // clone/drop each, which dominates the instrumentation overhead at
    // tens of candidates per slot. Chain the readings instead: one
    // `Instant::now()` per candidate boundary serves as the end of one
    // DciDecode observation and the start of the next, and the first/last
    // readings bracket the whole PdcchSearch scan.
    let timing = metrics.filter(|m| m.is_enabled());
    let scan_start = timing.map(|_| Instant::now());
    let mut t_prev: Option<Instant> = None;
    let mut out = Vec::new();
    let mut work = DecodeWork::default();
    for obs in observed {
        if let Some(m) = timing {
            let now = Instant::now();
            if let Some(prev) = t_prev {
                m.observe(Stage::DciDecode, now - prev);
            }
            t_prev = Some(now);
        }
        work.candidates += 1;
        let payload_bits = match obs.scrambled_bits.len().checked_sub(24) {
            Some(p) => p,
            None => continue,
        };
        if let Some(d) =
            decode_codeword_common(ctx, obs, hyp, payload_bits, &mut work.validation_rejects)
        {
            out.push(d);
            continue;
        }
        // Known-UE pass (UE-specific scrambling per hypothesis), gated by
        // the governor's search budget.
        let size_ok = ctx
            .sizes_for_ue()
            .is_some_and(|sizes| sizes.contains(&payload_bits));
        if size_ok && !hyp.c_rntis.is_empty() {
            if !budget.admits_ue(obs.level, work.ue_candidates) {
                work.pruned += 1;
                continue;
            }
            work.ue_candidates += 1;
            work.ue_hypotheses += hyp.c_rntis.len();
            if let Some(d) = decode_codeword_ue(ctx, obs, hyp, &mut work.validation_rejects) {
                out.push(d);
            }
        }
    }
    if let Some(m) = timing {
        let end = Instant::now();
        if let Some(prev) = t_prev {
            m.observe(Stage::DciDecode, end - prev);
        }
        if let Some(start) = scan_start {
            m.observe(Stage::PdcchSearch, end - start);
        }
    }
    if let Some(m) = metrics {
        m.add(Counter::CandidatesScanned, work.candidates as u64);
        m.add(Counter::DcisDecoded, out.len() as u64);
        m.add(Counter::CandidatesPruned, work.pruned as u64);
        m.add(Counter::ValidationRejects, work.validation_rejects as u64);
    }
    (out, work)
}

/// Common-search-space hypotheses against one captured codeword: SI-RNTI,
/// pending RA-/TC-RNTIs, and the missed-RAR CRC-XOR recovery fallback.
/// Never pruned by any search budget.
fn decode_codeword_common(
    ctx: &DecoderContext,
    obs: &ObservedDci,
    hyp: &Hypotheses,
    payload_bits: usize,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    if hyp.skip_common || !ctx.sizes_for_common().contains(&payload_bits) {
        return None;
    }
    let common = descramble(
        &obs.scrambled_bits,
        search_space_cinit(Rnti(0), false, ctx.pci),
    );
    let common_hyps = std::iter::once((Rnti::SI, RntiType::Si))
        .chain(hyp.ra_rntis.iter().map(|r| (*r, RntiType::Ra)))
        .chain(hyp.tc_rntis.iter().map(|r| (*r, RntiType::Tc)));
    for (rnti, rnti_type) in common_hyps {
        if let Some(payload) = dci_check_crc(&common, rnti.0) {
            if let Some(d) = unpack(ctx, &payload, false, rnti, rnti_type, obs, rejects) {
                return Some(d);
            }
        }
    }
    // Missed-RAR fallback: recover an unknown TC-RNTI from the CRC XOR.
    if hyp.allow_recovery {
        if let Some(rnti) = dci_recover_rnti(&common) {
            let r = Rnti(rnti);
            if r.is_c_rnti_range() && !hyp.c_rntis.contains(&r) {
                let payload = common[..payload_bits].to_vec();
                if let Some(d) = unpack(ctx, &payload, false, r, RntiType::Tc, obs, rejects) {
                    return Some(d);
                }
            }
        }
    }
    None
}

/// Known-UE hypotheses against one captured codeword (the caller has
/// already checked sizing and the search budget).
fn decode_codeword_ue(
    ctx: &DecoderContext,
    obs: &ObservedDci,
    hyp: &Hypotheses,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    for &rnti in &hyp.c_rntis {
        let cw = descramble(&obs.scrambled_bits, search_space_cinit(rnti, true, ctx.pci));
        if let Some(payload) = dci_check_crc(&cw, rnti.0) {
            if let Some(d) = unpack(ctx, &payload, true, rnti, RntiType::C, obs, rejects) {
                return Some(d);
            }
        }
    }
    None
}

/// One equalised candidate extracted from a grid (signal-processing
/// product, shareable across DCI threads).
#[derive(Debug, Clone)]
pub struct ExtractedCandidate {
    /// Common-descrambled LLRs.
    pub llrs: Vec<f32>,
    /// Aggregation level.
    pub level: AggregationLevel,
    /// First CCE.
    pub cce_start: usize,
}

/// Signal-processing stage: extract and equalise every energetic candidate
/// of the CORESET (run once per slot; the Fig 4 "one slot data" product
/// handed to the DCI threads).
pub fn extract_all_candidates(
    ctx: &DecoderContext,
    grid: &ResourceGrid,
    slot_in_frame: usize,
) -> Vec<ExtractedCandidate> {
    let mut out = Vec::new();
    let n_cces = ctx.coreset.n_cces();
    let common_cinit = search_space_cinit(Rnti(0), false, ctx.pci);
    for level in AggregationLevel::all() {
        let l = level.cces();
        if l > n_cces {
            break;
        }
        for cce_start in (0..=(n_cces - l)).step_by(l) {
            let soft = extract_candidate(
                grid,
                &ctx.coreset,
                cce_start,
                level,
                ctx.pci,
                common_cinit,
                slot_in_frame,
            );
            // A candidate with no transmission has pilot SNR near the
            // noise floor — pilots exist only where a DCI is mapped, so an
            // energy gate skips silence cheaply.
            if soft.pilot_snr < 1.5 {
                continue;
            }
            out.push(ExtractedCandidate {
                llrs: soft.llrs,
                level,
                cce_start,
            });
        }
    }
    out
}

/// Hypothesis-testing stage over pre-extracted candidates.
pub fn decode_candidates(
    ctx: &DecoderContext,
    candidates: &[ExtractedCandidate],
    hyp: &Hypotheses,
) -> Vec<DecodedDci> {
    decode_candidates_metered(ctx, candidates, hyp, None)
}

/// [`decode_candidates`] with per-candidate DCI-decode instrumentation.
pub fn decode_candidates_metered(
    ctx: &DecoderContext,
    candidates: &[ExtractedCandidate],
    hyp: &Hypotheses,
    metrics: Option<&Arc<Metrics>>,
) -> Vec<DecodedDci> {
    decode_candidates_budgeted(ctx, candidates, hyp, SearchBudget::unlimited(), metrics).0
}

/// [`decode_candidates_metered`] under a [`SearchBudget`]: the common pass
/// always runs in full; only the UE-specific pass is gated.
pub fn decode_candidates_budgeted(
    ctx: &DecoderContext,
    candidates: &[ExtractedCandidate],
    hyp: &Hypotheses,
    budget: SearchBudget,
    metrics: Option<&Arc<Metrics>>,
) -> (Vec<DecodedDci>, DecodeWork) {
    let common_cinit = search_space_cinit(Rnti(0), false, ctx.pci);
    // Chained per-candidate timing (see decode_message_slot_budgeted):
    // one clock read per candidate boundary instead of an RAII timer each.
    let timing = metrics.filter(|m| m.is_enabled());
    let mut t_prev: Option<Instant> = None;
    let mut out: Vec<DecodedDci> = Vec::new();
    let mut work = DecodeWork::default();
    for cand in candidates {
        if let Some(m) = timing {
            let now = Instant::now();
            if let Some(prev) = t_prev {
                m.observe(Stage::DciDecode, now - prev);
            }
            t_prev = Some(now);
        }
        work.candidates += 1;
        // Skip candidates overlapping an already-decoded DCI (a smaller
        // aggregation level aliasing into a larger one's CCEs).
        if out.iter().any(|d| {
            ranges_overlap(
                d.cce_start,
                d.level.cces(),
                cand.cce_start,
                cand.level.cces(),
            )
        }) {
            continue;
        }
        if let Some(d) = decode_soft_candidate_common(
            ctx,
            &cand.llrs,
            cand.level,
            cand.cce_start,
            hyp,
            &mut work.validation_rejects,
        ) {
            out.push(d);
            continue;
        }
        if ctx.sizes_for_ue().is_some() && !hyp.c_rntis.is_empty() {
            if !budget.admits_ue(cand.level, work.ue_candidates) {
                work.pruned += 1;
                continue;
            }
            work.ue_candidates += 1;
            work.ue_hypotheses += hyp.c_rntis.len();
            if let Some(d) = decode_soft_candidate_ue(
                ctx,
                &cand.llrs,
                cand.level,
                cand.cce_start,
                hyp,
                common_cinit,
                &mut work.validation_rejects,
            ) {
                out.push(d);
            }
        }
    }
    if let (Some(m), Some(prev)) = (timing, t_prev) {
        m.observe(Stage::DciDecode, prev.elapsed());
    }
    if let Some(m) = metrics {
        m.add(Counter::CandidatesScanned, work.candidates as u64);
        m.add(Counter::DcisDecoded, out.len() as u64);
        m.add(Counter::CandidatesPruned, work.pruned as u64);
        m.add(Counter::ValidationRejects, work.validation_rejects as u64);
    }
    (out, work)
}

/// Decode all DCIs from a received IQ-fidelity resource grid, scanning all
/// aligned candidate positions at all aggregation levels. Equivalent to
/// [`extract_all_candidates`] followed by [`decode_candidates`].
pub fn decode_grid(
    ctx: &DecoderContext,
    grid: &ResourceGrid,
    slot_in_frame: usize,
    hyp: &Hypotheses,
) -> Vec<DecodedDci> {
    decode_grid_metered(ctx, grid, slot_in_frame, hyp, None)
}

/// [`decode_grid`] with pipeline instrumentation: candidate extraction and
/// equalisation is the PDCCH search stage; the hypothesis testing records
/// per-candidate DCI-decode observations.
pub fn decode_grid_metered(
    ctx: &DecoderContext,
    grid: &ResourceGrid,
    slot_in_frame: usize,
    hyp: &Hypotheses,
    metrics: Option<&Arc<Metrics>>,
) -> Vec<DecodedDci> {
    decode_grid_budgeted(
        ctx,
        grid,
        slot_in_frame,
        hyp,
        SearchBudget::unlimited(),
        metrics,
    )
    .0
}

/// [`decode_grid_metered`] under a [`SearchBudget`].
pub fn decode_grid_budgeted(
    ctx: &DecoderContext,
    grid: &ResourceGrid,
    slot_in_frame: usize,
    hyp: &Hypotheses,
    budget: SearchBudget,
    metrics: Option<&Arc<Metrics>>,
) -> (Vec<DecodedDci>, DecodeWork) {
    let candidates = {
        let _t = Metrics::maybe_start(metrics, Stage::PdcchSearch);
        extract_all_candidates(ctx, grid, slot_in_frame)
    };
    decode_candidates_budgeted(ctx, &candidates, hyp, budget, metrics)
}

/// Common-search-space hypotheses against one equalised soft candidate (IQ
/// path): SI/RA/TC plus CRC-XOR recovery. Never pruned by any budget.
fn decode_soft_candidate_common(
    ctx: &DecoderContext,
    llrs_common: &[f32],
    level: AggregationLevel,
    cce_start: usize,
    hyp: &Hypotheses,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    if hyp.skip_common {
        return None;
    }
    for payload_bits in ctx.sizes_for_common() {
        let k = payload_bits + 24;
        if k >= level.bits() {
            continue;
        }
        let code = PolarCode::new(k, level.bits());
        let cw = code.decode_sc(llrs_common);
        let common_hyps = std::iter::once((Rnti::SI, RntiType::Si))
            .chain(hyp.ra_rntis.iter().map(|r| (*r, RntiType::Ra)))
            .chain(hyp.tc_rntis.iter().map(|r| (*r, RntiType::Tc)));
        for (rnti, rnti_type) in common_hyps {
            if let Some(payload) = dci_check_crc(&cw, rnti.0) {
                if let Some(d) = unpack_at(
                    ctx, &payload, false, rnti, rnti_type, level, cce_start, rejects,
                ) {
                    return Some(d);
                }
            }
        }
        if hyp.allow_recovery {
            if let Some(rnti) = dci_recover_rnti(&cw) {
                let r = Rnti(rnti);
                if r.is_c_rnti_range() && !hyp.c_rntis.contains(&r) {
                    let payload = cw[..payload_bits].to_vec();
                    if let Some(d) = unpack_at(
                        ctx,
                        &payload,
                        false,
                        r,
                        RntiType::Tc,
                        level,
                        cce_start,
                        rejects,
                    ) {
                        return Some(d);
                    }
                }
            }
        }
    }
    None
}

/// Known-UE hypotheses against one equalised soft candidate (the caller
/// has already checked the search budget).
fn decode_soft_candidate_ue(
    ctx: &DecoderContext,
    llrs_common: &[f32],
    level: AggregationLevel,
    cce_start: usize,
    hyp: &Hypotheses,
    common_cinit: u32,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    let sizes = ctx.sizes_for_ue()?;
    let common_seq = gold_bits_cached(common_cinit, llrs_common.len());
    for &rnti in &hyp.c_rntis {
        let ue_seq = gold_bits_cached(search_space_cinit(rnti, true, ctx.pci), llrs_common.len());
        let llrs: Vec<f32> = llrs_common
            .iter()
            .zip(common_seq.iter().zip(ue_seq.iter()))
            .map(|(l, (a, b))| if a == b { *l } else { -*l })
            .collect();
        for &payload_bits in &sizes {
            let k = payload_bits + 24;
            if k >= level.bits() {
                continue;
            }
            let code = PolarCode::new(k, level.bits());
            let cw = code.decode_sc(&llrs);
            if let Some(payload) = dci_check_crc(&cw, rnti.0) {
                if let Some(d) = unpack_at(
                    ctx,
                    &payload,
                    true,
                    rnti,
                    RntiType::C,
                    level,
                    cce_start,
                    rejects,
                ) {
                    return Some(d);
                }
            }
        }
    }
    None
}

fn ranges_overlap(a_start: usize, a_len: usize, b_start: usize, b_len: usize) -> bool {
    a_start < b_start + b_len && b_start < a_start + a_len
}

fn descramble(bits: &[u8], c_init: u32) -> Vec<u8> {
    let seq = gold_bits_cached(c_init, bits.len());
    bits.iter().zip(seq.iter()).map(|(b, s)| b ^ s).collect()
}

fn unpack(
    ctx: &DecoderContext,
    payload: &[u8],
    ue_specific: bool,
    rnti: Rnti,
    rnti_type: RntiType,
    obs: &ObservedDci,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    unpack_at(
        ctx,
        payload,
        ue_specific,
        rnti,
        rnti_type,
        obs.level,
        obs.cce_start,
        rejects,
    )
}

/// Stage-1 plausibility gate: every CRC-passing payload, whatever its
/// provenance (hypothesis match or CRC-XOR recovery), is unpacked with
/// [`Dci::unpack_validated`] and rejected — counted, never propagated —
/// when any field contradicts the active cell configuration.
#[allow(clippy::too_many_arguments)]
fn unpack_at(
    ctx: &DecoderContext,
    payload: &[u8],
    ue_specific: bool,
    rnti: Rnti,
    rnti_type: RntiType,
    level: AggregationLevel,
    cce_start: usize,
    rejects: &mut usize,
) -> Option<DecodedDci> {
    let sizing = if ue_specific {
        ctx.ue_sizing?
    } else {
        ctx.common_sizing
    };
    match Dci::unpack_validated(payload, &sizing) {
        Ok(dci) => Some(DecodedDci {
            rnti,
            rnti_type,
            dci,
            level,
            cce_start,
        }),
        Err(_) => {
            *rejects += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{scrambling_for, Observer};
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn ctx(cfg: &CellConfig) -> DecoderContext {
        DecoderContext {
            coreset: cfg.coreset,
            pci: cfg.pci.0,
            common_sizing: DciSizing {
                bwp_prbs: cfg.coreset.n_prb,
            },
            ue_sizing: Some(DciSizing {
                bwp_prbs: cfg.carrier_prbs,
            }),
        }
    }

    fn loaded_gnb(seed: u64) -> Gnb {
        let mut g = Gnb::new(CellConfig::srsran_n41(), Box::new(RoundRobin::new()), seed);
        g.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 4e6,
                    packet_bytes: 1200,
                },
                1,
            ),
            0.0,
            10.0,
            1,
        ));
        g
    }

    #[test]
    fn message_decode_finds_known_ue_dcis() {
        let mut g = loaded_gnb(1);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let mut obs = Observer::new(&cfg, 35.0, false, 3);
        // Connect the UE first.
        let mut rnti = None;
        for s in 0..2000 {
            let out = g.step();
            if rnti.is_none() {
                if let Some(r) = g.connected_rntis().first() {
                    rnti = Some(*r);
                }
                continue;
            }
            let truth_c: Vec<_> = out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == RntiType::C)
                .cloned()
                .collect();
            if truth_c.is_empty() {
                continue;
            }
            let Some(known) = rnti else {
                continue;
            };
            let hyp = Hypotheses {
                c_rntis: vec![known],
                ..Hypotheses::default()
            };
            if let crate::observe::ObservedSlot::Message { dcis, .. } =
                obs.observe(&out, s as f64 * 0.0005)
            {
                let decoded = decode_message_slot(&c, &dcis, &hyp);
                let found_c = decoded
                    .iter()
                    .filter(|d| d.rnti_type == RntiType::C)
                    .count();
                assert_eq!(found_c, truth_c.len(), "all C-RNTI DCIs decoded at 35 dB");
                return;
            }
        }
        panic!("never saw a data DCI");
    }

    #[test]
    fn unknown_c_rnti_dcis_are_invisible() {
        // Without the RNTI in the hypothesis set, UE-specific scrambling
        // hides the DCI — the paper's "if we miss a RACH…" property.
        let mut g = loaded_gnb(2);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let mut obs = Observer::new(&cfg, 35.0, false, 4);
        for s in 0..2000 {
            let out = g.step();
            let has_c = out.dcis.iter().any(|d| d.rnti_type == RntiType::C);
            if !has_c {
                continue;
            }
            let hyp = Hypotheses::default(); // knows nothing
            if let crate::observe::ObservedSlot::Message { dcis, .. } =
                obs.observe(&out, s as f64 * 0.0005)
            {
                let decoded = decode_message_slot(&c, &dcis, &hyp);
                assert!(
                    decoded.iter().all(|d| d.rnti_type != RntiType::C),
                    "C-RNTI DCI decoded without knowing the RNTI"
                );
                return;
            }
        }
        panic!("never saw a data DCI");
    }

    #[test]
    fn msg4_recovery_yields_tc_rnti() {
        let mut g = loaded_gnb(3);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let mut obs = Observer::new(&cfg, 35.0, false, 5);
        for s in 0..200 {
            let out = g.step();
            let msg4 = out
                .dcis
                .iter()
                .find(|d| d.rnti_type == RntiType::Tc)
                .cloned();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            if let Some(tx) = msg4 {
                let hyp = Hypotheses {
                    allow_recovery: true,
                    ..Hypotheses::default()
                };
                if let crate::observe::ObservedSlot::Message { dcis, .. } = observed {
                    let decoded = decode_message_slot(&c, &dcis, &hyp);
                    // A marginal capture may fail recovery for this slot;
                    // keep watching for the next MSG 4 instead of dying.
                    let Some(rec) = decoded.iter().find(|d| d.rnti_type == RntiType::Tc) else {
                        continue;
                    };
                    assert_eq!(rec.rnti, tx.rnti, "recovered the TC-RNTI via CRC XOR");
                    return;
                }
            }
        }
        panic!("no MSG 4 seen");
    }

    #[test]
    fn iq_decode_matches_message_decode_at_high_snr() {
        let mut g = loaded_gnb(4);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let renderer = gnb_sim::iq::IqRenderer::new(&cfg);
        let ofdm = renderer.ofdm();
        let mut usrp = nr_radio::VirtualUsrp::new(35.0, 0.0, 6);
        let mut rnti = None;
        for s in 0..2000u64 {
            let out = g.step();
            if rnti.is_none() {
                rnti = g.connected_rntis().first().copied();
                continue;
            }
            let n_truth = out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == RntiType::C)
                .count();
            if n_truth == 0 {
                continue;
            }
            let Some(known) = rnti else {
                continue;
            };
            let tx = renderer.render_iq(&out);
            let rx = usrp.receive(&tx, s as f64 * 0.0005);
            let grid = ofdm.demodulate(&rx.samples, out.slot_in_frame);
            let hyp = Hypotheses {
                c_rntis: vec![known],
                allow_recovery: false,
                ..Hypotheses::default()
            };
            let decoded = decode_grid(&c, &grid, out.slot_in_frame, &hyp);
            let found = decoded
                .iter()
                .filter(|d| d.rnti_type == RntiType::C)
                .count();
            assert_eq!(found, n_truth, "IQ blind decode finds the DCIs");
            return;
        }
        panic!("never saw a data DCI");
    }

    #[test]
    fn search_budget_gates_ue_pass_but_never_broadcast() {
        let mut g = loaded_gnb(6);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let mut obs = Observer::new(&cfg, 35.0, false, 9);
        let mut rnti = None;
        for s in 0..2000 {
            let out = g.step();
            if rnti.is_none() {
                rnti = g.connected_rntis().first().copied();
                continue;
            }
            let truth_c = out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == RntiType::C)
                .count();
            if truth_c == 0 {
                continue;
            }
            let hyp = Hypotheses {
                c_rntis: vec![rnti.unwrap_or(Rnti(0x4601))],
                ..Hypotheses::default()
            };
            if let crate::observe::ObservedSlot::Message { dcis, .. } =
                obs.observe(&out, s as f64 * 0.0005)
            {
                let (full, work) =
                    decode_message_slot_budgeted(&c, &dcis, &hyp, SearchBudget::unlimited(), None);
                let full_c = full.iter().filter(|d| d.rnti_type == RntiType::C).count();
                assert_eq!(full_c, truth_c, "unlimited budget decodes everything");
                assert_eq!(work.pruned, 0);
                assert!(work.ue_hypotheses >= truth_c);

                let (pruned, work) = decode_message_slot_budgeted(
                    &c,
                    &dcis,
                    &hyp,
                    SearchBudget::broadcast_only(),
                    None,
                );
                assert!(
                    pruned.iter().all(|d| d.rnti_type != RntiType::C),
                    "broadcast-only budget skips UE decodes"
                );
                assert_eq!(work.ue_candidates, 0);
                assert_eq!(work.pruned, truth_c, "every UE candidate counted as pruned");
                return;
            }
        }
        panic!("never saw a data DCI");
    }

    #[test]
    fn msg4_recovery_survives_broadcast_only_budget() {
        // The never-go-dark invariant at the decode layer: even with the
        // harshest budget, a MSG 4 in the common search space is still
        // recovered via the CRC XOR.
        let mut g = loaded_gnb(7);
        let cfg = g.cfg.clone();
        let c = ctx(&cfg);
        let mut obs = Observer::new(&cfg, 35.0, false, 8);
        for s in 0..200 {
            let out = g.step();
            let msg4 = out
                .dcis
                .iter()
                .find(|d| d.rnti_type == RntiType::Tc)
                .cloned();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            if let Some(tx) = msg4 {
                let hyp = Hypotheses {
                    allow_recovery: true,
                    ..Hypotheses::default()
                };
                if let crate::observe::ObservedSlot::Message { dcis, .. } = observed {
                    let (decoded, _) = decode_message_slot_budgeted(
                        &c,
                        &dcis,
                        &hyp,
                        SearchBudget::broadcast_only(),
                        None,
                    );
                    let Some(rec) = decoded.iter().find(|d| d.rnti_type == RntiType::Tc) else {
                        continue;
                    };
                    assert_eq!(rec.rnti, tx.rnti, "MSG 4 recovered under shedding");
                    return;
                }
            }
        }
        panic!("no MSG 4 seen");
    }

    #[test]
    fn scrambling_helpers_agree() {
        // The observer and decoder must use the same c_init mapping.
        let pci = 123;
        assert_eq!(
            scrambling_for(Rnti(0x4601), RntiType::C, pci),
            search_space_cinit(Rnti(0x4601), true, pci)
        );
        assert_eq!(
            scrambling_for(Rnti::SI, RntiType::Si, pci),
            search_space_cinit(Rnti(0), false, pci)
        );
    }
}
