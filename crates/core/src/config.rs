//! NR-Scope runtime configuration.

use crate::clock::ClockRecoveryConfig;
use crate::governor::GovernorConfig;
use serde::{Deserialize, Serialize};

/// At what fidelity the sniffer consumes the cell's emissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Typed per-slot messages with a calibrated corruption model —
    /// fast enough for 10-minute × 64-UE runs (Figs 9–11, 14–16).
    Message,
    /// Full IQ: OFDM demodulation, channel estimation, polar decoding —
    /// used where misses must emerge physically (Figs 7, 8, 13).
    Iq,
}

/// Sniffer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]); configs
    /// from a future schema are rejected by [`ScopeConfig::from_json`].
    pub schema_version: u32,
    /// Observation fidelity.
    pub fidelity: Fidelity,
    /// Sliding window for bit-rate estimation, in slots (the paper keeps a
    /// sliding window per UE, §3.2.2; 1 s at µ=1 = 2000 slots).
    pub rate_window_slots: u64,
    /// Drop a UE from the tracked list after this many slots without any
    /// DCI (idle-release shadowing; cells release after inactivity).
    pub ue_expiry_slots: u64,
    /// Skip PDSCH decoding of RRC Setup after the first UE (§3.1.2's
    /// optimisation; `false` re-decodes every time — the Fig 12 ablation).
    pub skip_rrc_decode: bool,
    /// Number of DCI worker threads in the Fig 4 pipeline.
    pub dci_threads: usize,
    /// Consecutive unhealthy slots (no DCI decoded while UEs are expected,
    /// or slots dropped outright) before sync is considered degraded.
    pub degraded_after_slots: u64,
    /// Consecutive unhealthy slots before sync is declared lost and the
    /// cell identity is discarded for re-acquisition.
    pub lost_after_slots: u64,
    /// Upper bound (exclusive) of the PCI range scanned while re-acquiring
    /// at message fidelity (IQ fidelity re-detects from PSS/SSS instead).
    pub pci_scan_max: u16,
    /// Whether the pipeline metrics registry records (counters, gauges,
    /// per-stage latency histograms). Near-zero cost either way; disabling
    /// also skips the per-stage clock reads.
    pub metrics_enabled: bool,
    /// Per-UE throughput history retention, in slots (bounds the
    /// estimator's memory; see `throughput::DEFAULT_HISTORY_RETENTION_SLOTS`).
    pub history_retention_slots: u64,
    /// Overload-governor budget and hysteresis knobs (the degradation
    /// ladder). Disabled by default: offline replay has no slot deadline.
    pub governor: GovernorConfig,
    /// Stage-2 RNTI admission control (untrusted-air hardening).
    /// Defaulted so configs written before the hardening still parse.
    #[serde(default)]
    pub admission: AdmissionConfig,
    /// Timing-recovery loop knobs (`clock.*`). The loop itself activates
    /// lazily, on the first clock observable from the front end — a
    /// session that never receives one behaves exactly as before.
    /// Defaulted so configs written before clock hardening still parse.
    #[serde(default)]
    pub clock: ClockRecoveryConfig,
}

/// Stage-2 admission-control knobs: what a recovery-minted (never
/// RAR-shadowed) C-RNTI must do before it is tracked. RAR + MSG 4
/// discovery is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Corroborating decodes required before admission.
    pub k: usize,
    /// Sliding window (slots) in which the `k` corroborating decodes must
    /// land; a probation candidate whose window lapses is quarantined as
    /// a ghost.
    pub window_slots: u64,
    /// Quarantine-ledger size bound; the oldest entry is evicted
    /// (counted) when a newly failed candidate would exceed it.
    pub quarantine_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            k: 3,
            window_slots: 200,
            quarantine_max: 256,
        }
    }
}

/// Storage-fault policy: how the durability ladder responds when the
/// disk under a session starts failing. A transient error is retried off
/// the hot path; a persistent one (or `ENOSPC` that pruning cannot cure)
/// demotes the session to `NonDurable` — the pipeline keeps decoding, the
/// loss window becomes unbounded and is reported honestly — and a
/// background probe re-promotes once the disk recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StoragePolicy {
    /// Write retries (with exponential backoff, on the writer thread —
    /// never the capture hot path) before a failing batch demotes the
    /// session to `NonDurable`.
    pub storage_retry_max: u32,
    /// Slots between disk re-probe attempts while `NonDurable` (a small
    /// test write + fsync to a probe file). Doubles after each failed
    /// probe — the governor's flap-backoff shape — and resets once the
    /// session has climbed back to `Durable`.
    pub reprobe_interval_slots: u64,
    /// Checkpoints retained by the emergency prune that `ENOSPC`
    /// triggers before the write is retried (journals wholly covered by
    /// the kept checkpoints are pruned too).
    pub emergency_prune_keep: usize,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        StoragePolicy {
            storage_retry_max: 4,
            reprobe_interval_slots: 2048, // ~1 s at µ=1
            emergency_prune_keep: 1,
        }
    }
}

/// Fleet-level knobs: how N per-cell shard pipelines share one worker
/// pool while staying isolated failure domains (bulkheads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Worker threads shared across all shards. 0 = one per available
    /// core, capped at the shard count (more workers than shards would
    /// only contend, since a shard admits one worker at a time).
    pub workers: usize,
    /// Per-shard bounded queue depth. When a shard's queue is full its
    /// *own* oldest slot is shed — backpressure never crosses a bulkhead.
    pub shard_queue_depth: usize,
    /// A shard whose slot has been in flight longer than this is declared
    /// wedged: its engine is fenced off and warm-restarted. 0 disables
    /// the watchdog.
    pub watchdog_ms: u64,
    /// Base delay before restarting a faulted shard; doubles per
    /// consecutive fault (exponential backoff).
    pub restart_backoff_ms: u64,
    /// Cap on the backoff doubling (`base << exp`).
    pub max_restart_backoff_exp: u32,
    /// A shard healthy this long has its restart backoff reset.
    pub backoff_calm_ms: u64,
    /// Cross-cell continuity window, in slots: a C-RNTI last active on
    /// cell A within this many slots of a discovery on cell B is matched
    /// as one user handed over, not two.
    pub continuity_window_slots: u64,
    /// Give every durable shard its own group-commit journal-writer
    /// thread instead of the default single shared writer. The shared
    /// writer is the right call on ordinary disks (one thread, batched
    /// syscalls for all shards); per-shard writers only pay off when
    /// shard journals live on independent devices. Defaulted off so
    /// configs written before group commit still parse.
    #[serde(default)]
    pub per_shard_journal_writers: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 0,
            shard_queue_depth: 64,
            watchdog_ms: 1_000,
            restart_backoff_ms: 5,
            max_restart_backoff_exp: 6,
            backoff_calm_ms: 10_000,
            continuity_window_slots: 2_000, // 1 s at µ=1
            per_shard_journal_writers: false,
        }
    }
}

impl ScopeConfig {
    /// Serialise to JSON (supervisor runners hand the child its config
    /// through a file rather than a brittle argv encoding).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ScopeConfig is always serialisable")
    }

    /// Parse a config written by [`ScopeConfig::to_json`], rejecting
    /// configs stamped with a future schema version.
    pub fn from_json(s: &str) -> Result<ScopeConfig, serde_json::Error> {
        let cfg: ScopeConfig = serde_json::from_str(s)?;
        if cfg.schema_version > crate::SCHEMA_VERSION {
            return Err(serde_json::Error::from(serde::DeError(format!(
                "scope config schema v{} is newer than supported v{}",
                cfg.schema_version,
                crate::SCHEMA_VERSION
            ))));
        }
        Ok(cfg)
    }
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            schema_version: crate::SCHEMA_VERSION,
            fidelity: Fidelity::Message,
            rate_window_slots: 2000,
            ue_expiry_slots: 20_000, // 10 s at µ=1
            skip_rrc_decode: true,
            dci_threads: 4,
            degraded_after_slots: 120,
            lost_after_slots: 400,
            pci_scan_max: 128,
            metrics_enabled: true,
            history_retention_slots: crate::throughput::DEFAULT_HISTORY_RETENTION_SLOTS,
            governor: GovernorConfig::default(),
            admission: AdmissionConfig::default(),
            clock: ClockRecoveryConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = ScopeConfig::default();
        assert_eq!(c.fidelity, Fidelity::Message);
        assert!(c.skip_rrc_decode, "paper §3.1.2 optimisation on by default");
        assert_eq!(c.dci_threads, 4, "paper evaluates with four DCI threads");
        assert!(
            !c.governor.enabled,
            "governor off by default: offline replay has no slot deadline"
        );
        assert!(c.governor.budget_fraction < 1.0, "headroom for capture");
        assert!(c.governor.promote_margin < 1.0, "promotion hysteresis");
        assert!(c.admission.k >= 2, "one chance CRC pass must not admit");
        assert!(c.admission.window_slots > 0);
        assert!(c.admission.quarantine_max > 0);
    }

    #[test]
    fn pre_hardening_config_json_gets_default_admission() {
        let mut json = ScopeConfig::default().to_json();
        // Strip the admission object as a pre-PR5 writer would have.
        let cfg = ScopeConfig::default();
        let adm = serde_json::to_string(&cfg.admission).expect("serialises");
        json = json.replace(&format!(",\"admission\":{adm}"), "");
        assert!(!json.contains("admission"), "field really stripped");
        let back = ScopeConfig::from_json(&json).expect("old config accepted");
        assert_eq!(back.admission, AdmissionConfig::default());
    }

    #[test]
    fn pre_clock_config_json_gets_default_clock() {
        let mut json = ScopeConfig::default().to_json();
        let cfg = ScopeConfig::default();
        let clk = serde_json::to_string(&cfg.clock).expect("serialises");
        json = json.replace(&format!(",\"clock\":{clk}"), "");
        assert!(!json.contains("\"clock\""), "field really stripped");
        let back = ScopeConfig::from_json(&json).expect("old config accepted");
        assert_eq!(back.clock, ClockRecoveryConfig::default());
    }
}
