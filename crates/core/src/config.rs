//! NR-Scope runtime configuration.

use crate::clock::ClockRecoveryConfig;
use crate::governor::GovernorConfig;
use serde::{Deserialize, Serialize};

/// At what fidelity the sniffer consumes the cell's emissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Typed per-slot messages with a calibrated corruption model —
    /// fast enough for 10-minute × 64-UE runs (Figs 9–11, 14–16).
    Message,
    /// Full IQ: OFDM demodulation, channel estimation, polar decoding —
    /// used where misses must emerge physically (Figs 7, 8, 13).
    Iq,
}

/// Sniffer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]); configs
    /// from a future schema are rejected by [`ScopeConfig::from_json`].
    pub schema_version: u32,
    /// Observation fidelity.
    pub fidelity: Fidelity,
    /// Sliding window for bit-rate estimation, in slots (the paper keeps a
    /// sliding window per UE, §3.2.2; 1 s at µ=1 = 2000 slots).
    pub rate_window_slots: u64,
    /// Drop a UE from the tracked list after this many slots without any
    /// DCI (idle-release shadowing; cells release after inactivity).
    pub ue_expiry_slots: u64,
    /// Skip PDSCH decoding of RRC Setup after the first UE (§3.1.2's
    /// optimisation; `false` re-decodes every time — the Fig 12 ablation).
    pub skip_rrc_decode: bool,
    /// Number of DCI worker threads in the Fig 4 pipeline.
    pub dci_threads: usize,
    /// Consecutive unhealthy slots (no DCI decoded while UEs are expected,
    /// or slots dropped outright) before sync is considered degraded.
    pub degraded_after_slots: u64,
    /// Consecutive unhealthy slots before sync is declared lost and the
    /// cell identity is discarded for re-acquisition.
    pub lost_after_slots: u64,
    /// Upper bound (exclusive) of the PCI range scanned while re-acquiring
    /// at message fidelity (IQ fidelity re-detects from PSS/SSS instead).
    pub pci_scan_max: u16,
    /// Whether the pipeline metrics registry records (counters, gauges,
    /// per-stage latency histograms). Near-zero cost either way; disabling
    /// also skips the per-stage clock reads.
    pub metrics_enabled: bool,
    /// Per-UE throughput history retention, in slots (bounds the
    /// estimator's memory; see `throughput::DEFAULT_HISTORY_RETENTION_SLOTS`).
    pub history_retention_slots: u64,
    /// Overload-governor budget and hysteresis knobs (the degradation
    /// ladder). Disabled by default: offline replay has no slot deadline.
    pub governor: GovernorConfig,
    /// Stage-2 RNTI admission control (untrusted-air hardening).
    /// Defaulted so configs written before the hardening still parse.
    #[serde(default)]
    pub admission: AdmissionConfig,
    /// Timing-recovery loop knobs (`clock.*`). The loop itself activates
    /// lazily, on the first clock observable from the front end — a
    /// session that never receives one behaves exactly as before.
    /// Defaulted so configs written before clock hardening still parse.
    #[serde(default)]
    pub clock: ClockRecoveryConfig,
    /// Liveness-supervision knobs (`supervise.*`): heartbeat cadence, hang
    /// deadline, and the restart-storm circuit breaker. Defaulted so
    /// configs written before liveness supervision still parse.
    #[serde(default)]
    pub supervise: SuperviseConfig,
}

/// Liveness-supervision knobs: how the parent decides a child is hung
/// rather than busy, and how the restart-storm circuit breaker meters
/// respawns. Shared across the supervised-child path and (budget/window)
/// the fleet's per-shard breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct SuperviseConfig {
    /// Child side: emit a [`ChildMsg::Heartbeat`](crate::supervise::ChildMsg)
    /// if this long has passed since the last line it wrote — keeps a
    /// busy-but-alive child (long gap-fill, slow slot) distinguishable
    /// from a wedged one.
    pub heartbeat_interval_ms: u64,
    /// Parent side: pipe silence longer than this classifies the child as
    /// hung — force-kill and warm-restart, exactly like a crash. Must
    /// comfortably exceed `heartbeat_interval_ms`.
    pub hang_deadline_ms: u64,
    /// Token-bucket restart budget: restarts the breaker grants before it
    /// opens. Tokens refill at `restart_budget` per
    /// `restart_budget_window_slots`.
    pub restart_budget: u32,
    /// Slot window over which the full restart budget refills.
    pub restart_budget_window_slots: u64,
    /// Slots the supervisor waits after a kill before respawning (lets a
    /// transient cause clear instead of restarting into it).
    pub restart_backoff_slots: u64,
    /// Slots an open breaker parks the child in lame-duck mode before
    /// granting a single half-open probe restart.
    pub breaker_halfopen_after_slots: u64,
    /// Bound on waiting for a finishing child to exit before the
    /// supervisor escalates to SIGKILL ([`ChildHandle::wait_timeout`]
    /// (crate::supervise::ChildHandle::wait_timeout)).
    pub wait_timeout_ms: u64,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            heartbeat_interval_ms: 200,
            hang_deadline_ms: 2_000,
            restart_budget: 6,
            restart_budget_window_slots: 20_000, // 10 s at µ=1
            restart_backoff_slots: 8,
            breaker_halfopen_after_slots: 4_000, // 2 s at µ=1
            wait_timeout_ms: 5_000,
        }
    }
}

/// Stage-2 admission-control knobs: what a recovery-minted (never
/// RAR-shadowed) C-RNTI must do before it is tracked. RAR + MSG 4
/// discovery is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Corroborating decodes required before admission.
    pub k: usize,
    /// Sliding window (slots) in which the `k` corroborating decodes must
    /// land; a probation candidate whose window lapses is quarantined as
    /// a ghost.
    pub window_slots: u64,
    /// Quarantine-ledger size bound; the oldest entry is evicted
    /// (counted) when a newly failed candidate would exceed it.
    pub quarantine_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            k: 3,
            window_slots: 200,
            quarantine_max: 256,
        }
    }
}

/// Storage-fault policy: how the durability ladder responds when the
/// disk under a session starts failing. A transient error is retried off
/// the hot path; a persistent one (or `ENOSPC` that pruning cannot cure)
/// demotes the session to `NonDurable` — the pipeline keeps decoding, the
/// loss window becomes unbounded and is reported honestly — and a
/// background probe re-promotes once the disk recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StoragePolicy {
    /// Write retries (with exponential backoff, on the writer thread —
    /// never the capture hot path) before a failing batch demotes the
    /// session to `NonDurable`.
    pub storage_retry_max: u32,
    /// Slots between disk re-probe attempts while `NonDurable` (a small
    /// test write + fsync to a probe file). Doubles after each failed
    /// probe — the governor's flap-backoff shape — and resets once the
    /// session has climbed back to `Durable`.
    pub reprobe_interval_slots: u64,
    /// Checkpoints retained by the emergency prune that `ENOSPC`
    /// triggers before the write is retried (journals wholly covered by
    /// the kept checkpoints are pruned too).
    pub emergency_prune_keep: usize,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        StoragePolicy {
            storage_retry_max: 4,
            reprobe_interval_slots: 2048, // ~1 s at µ=1
            emergency_prune_keep: 1,
        }
    }
}

/// Fleet-level knobs: how N per-cell shard pipelines share one worker
/// pool while staying isolated failure domains (bulkheads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Worker threads shared across all shards. 0 = one per available
    /// core, capped at the shard count (more workers than shards would
    /// only contend, since a shard admits one worker at a time).
    pub workers: usize,
    /// Per-shard bounded queue depth. When a shard's queue is full its
    /// *own* oldest slot is shed — backpressure never crosses a bulkhead.
    pub shard_queue_depth: usize,
    /// A shard whose slot has been in flight longer than this is declared
    /// wedged: its engine is fenced off and warm-restarted. 0 disables
    /// the watchdog.
    pub watchdog_ms: u64,
    /// Base delay before restarting a faulted shard; doubles per
    /// consecutive fault (exponential backoff).
    pub restart_backoff_ms: u64,
    /// Cap on the backoff doubling (`base << exp`).
    pub max_restart_backoff_exp: u32,
    /// A shard healthy this long has its restart backoff reset.
    pub backoff_calm_ms: u64,
    /// Cross-cell continuity window, in slots: a C-RNTI last active on
    /// cell A within this many slots of a discovery on cell B is matched
    /// as one user handed over, not two.
    pub continuity_window_slots: u64,
    /// Give every durable shard its own group-commit journal-writer
    /// thread instead of the default single shared writer. The shared
    /// writer is the right call on ordinary disks (one thread, batched
    /// syscalls for all shards); per-shard writers only pay off when
    /// shard journals live on independent devices. Defaulted off so
    /// configs written before group commit still parse.
    #[serde(default)]
    pub per_shard_journal_writers: bool,
    /// Per-shard restart-storm budget: engine rebuilds the breaker grants
    /// before it opens and the shard is parked in lame-duck mode (a
    /// volatile-degraded engine, no further rebuild attempts until the
    /// half-open probe). Tokens refill at `restart_budget` per
    /// `restart_budget_window_slots` of that shard's feed. 0 disables the
    /// breaker. Defaulted so pre-breaker configs still parse.
    #[serde(default = "default_fleet_restart_budget")]
    pub restart_budget: u32,
    /// Slot window (of the shard's own feed) over which the full restart
    /// budget refills.
    #[serde(default = "default_fleet_restart_budget_window")]
    pub restart_budget_window_slots: u64,
    /// Slots an open shard breaker waits before granting one half-open
    /// probe rebuild.
    #[serde(default = "default_fleet_breaker_halfopen")]
    pub breaker_halfopen_after_slots: u64,
}

fn default_fleet_restart_budget() -> u32 {
    10
}

fn default_fleet_restart_budget_window() -> u64 {
    20_000 // 10 s at µ=1
}

fn default_fleet_breaker_halfopen() -> u64 {
    4_000 // 2 s at µ=1
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 0,
            shard_queue_depth: 64,
            watchdog_ms: 1_000,
            restart_backoff_ms: 5,
            max_restart_backoff_exp: 6,
            backoff_calm_ms: 10_000,
            continuity_window_slots: 2_000, // 1 s at µ=1
            per_shard_journal_writers: false,
            restart_budget: default_fleet_restart_budget(),
            restart_budget_window_slots: default_fleet_restart_budget_window(),
            breaker_halfopen_after_slots: default_fleet_breaker_halfopen(),
        }
    }
}

impl ScopeConfig {
    /// Serialise to JSON (supervisor runners hand the child its config
    /// through a file rather than a brittle argv encoding).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ScopeConfig is always serialisable")
    }

    /// Parse a config written by [`ScopeConfig::to_json`], rejecting
    /// configs stamped with a future schema version.
    pub fn from_json(s: &str) -> Result<ScopeConfig, serde_json::Error> {
        let cfg: ScopeConfig = serde_json::from_str(s)?;
        if cfg.schema_version > crate::SCHEMA_VERSION {
            return Err(serde_json::Error::from(serde::DeError(format!(
                "scope config schema v{} is newer than supported v{}",
                cfg.schema_version,
                crate::SCHEMA_VERSION
            ))));
        }
        Ok(cfg)
    }
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            schema_version: crate::SCHEMA_VERSION,
            fidelity: Fidelity::Message,
            rate_window_slots: 2000,
            ue_expiry_slots: 20_000, // 10 s at µ=1
            skip_rrc_decode: true,
            dci_threads: 4,
            degraded_after_slots: 120,
            lost_after_slots: 400,
            pci_scan_max: 128,
            metrics_enabled: true,
            history_retention_slots: crate::throughput::DEFAULT_HISTORY_RETENTION_SLOTS,
            governor: GovernorConfig::default(),
            admission: AdmissionConfig::default(),
            clock: ClockRecoveryConfig::default(),
            supervise: SuperviseConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = ScopeConfig::default();
        assert_eq!(c.fidelity, Fidelity::Message);
        assert!(c.skip_rrc_decode, "paper §3.1.2 optimisation on by default");
        assert_eq!(c.dci_threads, 4, "paper evaluates with four DCI threads");
        assert!(
            !c.governor.enabled,
            "governor off by default: offline replay has no slot deadline"
        );
        assert!(c.governor.budget_fraction < 1.0, "headroom for capture");
        assert!(c.governor.promote_margin < 1.0, "promotion hysteresis");
        assert!(c.admission.k >= 2, "one chance CRC pass must not admit");
        assert!(c.admission.window_slots > 0);
        assert!(c.admission.quarantine_max > 0);
    }

    #[test]
    fn pre_hardening_config_json_gets_default_admission() {
        let mut json = ScopeConfig::default().to_json();
        // Strip the admission object as a pre-PR5 writer would have.
        let cfg = ScopeConfig::default();
        let adm = serde_json::to_string(&cfg.admission).expect("serialises");
        json = json.replace(&format!(",\"admission\":{adm}"), "");
        assert!(!json.contains("admission"), "field really stripped");
        let back = ScopeConfig::from_json(&json).expect("old config accepted");
        assert_eq!(back.admission, AdmissionConfig::default());
    }

    #[test]
    fn pre_liveness_config_json_gets_default_supervise() {
        let mut json = ScopeConfig::default().to_json();
        let cfg = ScopeConfig::default();
        let sup = serde_json::to_string(&cfg.supervise).expect("serialises");
        json = json.replace(&format!(",\"supervise\":{sup}"), "");
        assert!(!json.contains("supervise"), "field really stripped");
        let back = ScopeConfig::from_json(&json).expect("old config accepted");
        assert_eq!(back.supervise, SuperviseConfig::default());
        assert!(
            back.supervise.hang_deadline_ms > back.supervise.heartbeat_interval_ms,
            "a heartbeat cadence slower than the hang deadline would flag every slot"
        );
    }

    #[test]
    fn pre_clock_config_json_gets_default_clock() {
        let mut json = ScopeConfig::default().to_json();
        let cfg = ScopeConfig::default();
        let clk = serde_json::to_string(&cfg.clock).expect("serialises");
        json = json.replace(&format!(",\"clock\":{clk}"), "");
        assert!(!json.contains("\"clock\""), "field really stripped");
        let back = ScopeConfig::from_json(&json).expect("old config accepted");
        assert_eq!(back.clock, ClockRecoveryConfig::default());
    }
}
