//! Overload governor: slot-deadline enforcement with an adaptive
//! degradation ladder (PR 3 tentpole).
//!
//! NR-Scope's headline requirement is decoding every UE's DCI in every TTI
//! in real time — falling behind the slot clock makes telemetry silently
//! wrong. This module measures per-slot pipeline latency against the
//! numerology-derived TTI budget and drives a hysteresis-based ladder:
//!
//! `Full` blind search → [`LoadRung::PrunedSearch`] (drop high-candidate
//! aggregation levels, cap UE-specific attempts) →
//! [`LoadRung::BroadcastOnly`] (common search space only — SI-/RA-/TC-RNTI
//! and CRC-XOR recovery, so cell knowledge and RACH-based C-RNTI discovery
//! survive) → [`LoadRung::Shedding`].
//!
//! Recovery is staged: a rung is climbed only after a run of consecutive
//! in-budget slots, and the required run length backs off exponentially
//! when a promotion flaps straight back into a demotion. Latency is
//! tracked as an EWMA so a single cheap slot (no UE hypotheses due) cannot
//! reset the ladder's view of sustained load.
//!
//! The accuracy-critical invariant, enforced by [`OverloadGovernor::
//! search_budget`]: whatever the rung, the *common* search space is never
//! pruned — MSG 4 C-RNTI recovery and SIB1 tracking never go dark.

use crate::decoder::DecodeWork;
use nr_phy::numerology::Numerology;
use nr_phy::pdcch::{AggregationLevel, SearchBudget};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Degradation-ladder rung, healthiest first. The numeric value is the
/// `load_rung` gauge reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LoadRung {
    /// Full blind search: every aggregation level, every hypothesis.
    Full = 0,
    /// UE-specific search pruned: low aggregation levels dropped and a cap
    /// on UE candidate attempts per slot.
    PrunedSearch = 1,
    /// Common search space only: SI/RA/TC decoding and MSG 4 C-RNTI
    /// recovery continue; per-UE telemetry pauses.
    BroadcastOnly = 2,
    /// Keep-alive floor under extreme overload. Decoding is still
    /// broadcast-only (the never-go-dark invariant); in addition the worker
    /// pool may shed queued data-priority jobs.
    Shedding = 3,
}

impl LoadRung {
    /// All rungs, healthiest first.
    pub const ALL: [LoadRung; 4] = [
        LoadRung::Full,
        LoadRung::PrunedSearch,
        LoadRung::BroadcastOnly,
        LoadRung::Shedding,
    ];

    /// Stable snake_case name (matches the per-rung stage histograms).
    pub fn name(self) -> &'static str {
        match self {
            LoadRung::Full => "full",
            LoadRung::PrunedSearch => "pruned_search",
            LoadRung::BroadcastOnly => "broadcast_only",
            LoadRung::Shedding => "shedding",
        }
    }

    /// One rung worse (toward `Shedding`); saturates.
    pub fn demoted(self) -> LoadRung {
        match self {
            LoadRung::Full => LoadRung::PrunedSearch,
            LoadRung::PrunedSearch => LoadRung::BroadcastOnly,
            _ => LoadRung::Shedding,
        }
    }

    /// One rung better (toward `Full`); saturates.
    pub fn promoted(self) -> LoadRung {
        match self {
            LoadRung::Shedding => LoadRung::BroadcastOnly,
            LoadRung::BroadcastOnly => LoadRung::PrunedSearch,
            _ => LoadRung::Full,
        }
    }

    /// Construct from the gauge encoding.
    pub fn from_index(i: u64) -> Option<LoadRung> {
        LoadRung::ALL.get(i as usize).copied()
    }
}

/// Budget and hysteresis knobs for the overload governor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Master switch. Off by default: offline replay (the test suites, the
    /// benches) has no deadline, the same way `BackpressurePolicy::Block`
    /// is the lossless offline default. Live capture opts in.
    pub enabled: bool,
    /// Fraction of the TTI spent on pipeline work before the slot counts
    /// as over budget (the rest is headroom for capture and jitter).
    pub budget_fraction: f64,
    /// Explicit per-slot budget in µs, overriding the numerology-derived
    /// TTI × `budget_fraction`. Tests and constrained deployments use this.
    pub budget_us_override: Option<f64>,
    /// Consecutive slots with the latency EWMA over budget before the
    /// ladder demotes one rung.
    pub demote_after_slots: u64,
    /// Base number of consecutive in-budget slots (EWMA under
    /// `promote_margin` × budget) before the ladder promotes one rung.
    /// Doubled per accumulated backoff level after flapping.
    pub promote_after_slots: u64,
    /// Promotion requires the EWMA under this fraction of the budget —
    /// strictly less than 1.0 so the ladder does not oscillate on the
    /// budget boundary.
    pub promote_margin: f64,
    /// A demotion within this many slots of the previous promotion counts
    /// as a flap and doubles the promotion run requirement.
    pub flap_window_slots: u64,
    /// Cap on the flap backoff exponent (promotion runs never exceed
    /// `promote_after_slots << max_backoff_exp`).
    pub max_backoff_exp: u32,
    /// `PrunedSearch`: drop UE-specific candidates below this level.
    pub pruned_min_level: AggregationLevel,
    /// `PrunedSearch`: cap on UE-specific candidate attempts per slot.
    pub pruned_max_ue_candidates: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            enabled: false,
            budget_fraction: 0.9,
            budget_us_override: None,
            demote_after_slots: 8,
            promote_after_slots: 100,
            promote_margin: 0.8,
            flap_window_slots: 300,
            max_backoff_exp: 3,
            pruned_min_level: AggregationLevel::L2,
            pruned_max_ue_candidates: 16,
        }
    }
}

/// What [`OverloadGovernor::on_slot`] concluded about one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotVerdict {
    /// This slot's latency alone exceeded the budget (deadline miss).
    pub missed: bool,
    /// A ladder transition this slot, `(from, to)`.
    pub transition: Option<(LoadRung, LoadRung)>,
}

/// EWMA smoothing: new = old + (sample − old)/16. Two slots of history
/// weigh ~88% after 32 slots — fast enough to catch an overload burst,
/// slow enough that one idle slot cannot fake recovery.
const EWMA_SHIFT: f64 = 16.0;

/// The per-slot deadline tracker and degradation-ladder state machine.
/// Serialisable so a crash-recovered session resumes at the rung and EWMA
/// it had earned, rather than restarting at `Full` under the same load
/// that demoted it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadGovernor {
    cfg: GovernorConfig,
    rung: LoadRung,
    /// EWMA of slot latency, ns. 0 until the first observation seeds it.
    ewma_ns: f64,
    /// Consecutive slots with the EWMA over budget.
    over_streak: u64,
    /// Consecutive slots with the EWMA under the promotion margin.
    ok_streak: u64,
    /// Flap backoff exponent: promotion run = base << exp.
    backoff_exp: u32,
    last_promotion_slot: Option<u64>,
    last_demotion_slot: Option<u64>,
    /// Pin the ladder to one rung (benches measure per-rung throughput).
    forced: Option<LoadRung>,
}

impl OverloadGovernor {
    /// New governor at `Full`.
    pub fn new(cfg: GovernorConfig) -> OverloadGovernor {
        OverloadGovernor {
            cfg,
            rung: LoadRung::Full,
            ewma_ns: 0.0,
            over_streak: 0,
            ok_streak: 0,
            backoff_exp: 0,
            last_promotion_slot: None,
            last_demotion_slot: None,
            forced: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Replace the configuration, keeping the ladder state. Used on warm
    /// restart: the checkpoint carries the earned rung/EWMA, but the
    /// operator's *current* config (budget, hysteresis) must win over the
    /// one frozen into the snapshot.
    pub fn set_config(&mut self, cfg: GovernorConfig) {
        self.cfg = cfg;
    }

    /// Current rung (the forced rung when pinned).
    pub fn rung(&self) -> LoadRung {
        self.forced.unwrap_or(self.rung)
    }

    /// Current flap-backoff exponent.
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }

    /// Smoothed latency estimate, µs.
    pub fn ewma_us(&self) -> f64 {
        self.ewma_ns / 1e3
    }

    /// Pin the ladder to `rung` (or unpin with `None`). While pinned the
    /// state machine still tracks latency but never transitions.
    pub fn force(&mut self, rung: Option<LoadRung>) {
        self.forced = rung;
    }

    /// Per-slot latency budget: the explicit override when set, otherwise
    /// `budget_fraction` of the numerology's TTI. Before the MIB fixes the
    /// numerology, µ=1 (the paper's mid-band cells, 0.5 ms TTI) is assumed.
    pub fn budget(&self, numerology: Option<Numerology>) -> Duration {
        if let Some(us) = self.cfg.budget_us_override {
            return Duration::from_nanos((us * 1e3) as u64);
        }
        let tti_s = numerology.unwrap_or(Numerology::Mu1).slot_duration_s();
        Duration::from_nanos((tti_s * self.cfg.budget_fraction * 1e9) as u64)
    }

    /// Feed one slot's measured pipeline latency. Returns whether the slot
    /// missed its deadline and any ladder transition taken.
    pub fn on_slot(&mut self, slot: u64, latency: Duration, budget: Duration) -> SlotVerdict {
        let lat_ns = latency.as_nanos().min(u64::MAX as u128) as f64;
        let budget_ns = budget.as_nanos().min(u64::MAX as u128) as f64;
        let missed = lat_ns > budget_ns;
        if !self.cfg.enabled {
            return SlotVerdict {
                missed,
                transition: None,
            };
        }
        if self.ewma_ns == 0.0 {
            self.ewma_ns = lat_ns;
        } else {
            self.ewma_ns += (lat_ns - self.ewma_ns) / EWMA_SHIFT;
        }

        if self.ewma_ns > budget_ns {
            self.over_streak += 1;
            self.ok_streak = 0;
        } else {
            self.over_streak = 0;
            if self.ewma_ns < budget_ns * self.cfg.promote_margin {
                self.ok_streak += 1;
            } else {
                // Hysteresis band: in budget, but not comfortably.
                self.ok_streak = 0;
            }
        }

        let mut transition = None;
        if self.over_streak >= self.cfg.demote_after_slots && self.rung != LoadRung::Shedding {
            let from = self.rung;
            self.rung = self.rung.demoted();
            self.over_streak = 0;
            self.ok_streak = 0;
            // A demotion hot on the heels of a promotion is a flap: the
            // probe failed, so the next probe waits twice as long.
            if let Some(p) = self.last_promotion_slot {
                if slot.saturating_sub(p) <= self.cfg.flap_window_slots {
                    self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.max_backoff_exp);
                }
            }
            self.last_demotion_slot = Some(slot);
            transition = Some((from, self.rung));
        } else if self.ok_streak >= self.promotion_run() && self.rung != LoadRung::Full {
            let from = self.rung;
            self.rung = self.rung.promoted();
            self.ok_streak = 0;
            // A calm stretch since the last demotion lets the backoff
            // decay, so a recovered cell climbs back at full speed.
            if self
                .last_demotion_slot
                .map(|d| slot.saturating_sub(d) > self.cfg.flap_window_slots)
                .unwrap_or(true)
            {
                self.backoff_exp = self.backoff_exp.saturating_sub(1);
            }
            self.last_promotion_slot = Some(slot);
            transition = Some((from, self.rung));
        }
        SlotVerdict { missed, transition }
    }

    /// A slot the front end dropped outright: the pipeline fell a full TTI
    /// behind, so it is accounted as a worst-case latency observation.
    pub fn on_dropped_slot(&mut self, slot: u64, budget: Duration) -> SlotVerdict {
        self.on_slot(slot, budget.saturating_mul(2), budget)
    }

    /// Consecutive in-budget slots currently required to climb one rung.
    pub fn promotion_run(&self) -> u64 {
        self.cfg
            .promote_after_slots
            .saturating_mul(1u64 << self.backoff_exp.min(62))
    }

    /// The PDCCH search budget for the current rung. Every rung keeps the
    /// common search space exhaustive — broadcast decodes are never shed.
    pub fn search_budget(&self) -> SearchBudget {
        match self.rung() {
            LoadRung::Full => SearchBudget::unlimited(),
            LoadRung::PrunedSearch => {
                SearchBudget::pruned(self.cfg.pruned_min_level, self.cfg.pruned_max_ue_candidates)
            }
            LoadRung::BroadcastOnly | LoadRung::Shedding => SearchBudget::broadcast_only(),
        }
    }
}

/// Deterministic latency model: maps one slot's decode work to a synthetic
/// latency. Tests and the overload soak drive the governor through this
/// instead of the wall clock, the same way message fidelity stands in for
/// IQ — the ladder's dynamics become seed-reproducible and independent of
/// the build profile or host load.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Fixed per-slot cost (capture, classification, housekeeping).
    pub base: Duration,
    /// Cost per PDCCH candidate scanned (extraction + common hypotheses).
    pub per_candidate: Duration,
    /// Cost per UE-specific RNTI hypothesis attempted.
    pub per_ue_hypothesis: Duration,
}

impl LoadModel {
    /// Synthetic latency for one slot's decode work.
    pub fn latency(&self, work: &DecodeWork) -> Duration {
        self.base
            + self.per_candidate.saturating_mul(work.candidates as u32)
            + self
                .per_ue_hypothesis
                .saturating_mul(work.ue_hypotheses as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig {
            enabled: true,
            budget_us_override: Some(500.0),
            demote_after_slots: 4,
            promote_after_slots: 20,
            flap_window_slots: 100,
            max_backoff_exp: 3,
            ..GovernorConfig::default()
        }
    }

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn budget_derives_from_numerology() {
        let g = OverloadGovernor::new(GovernorConfig::default());
        // µ=1: 0.5 ms TTI × 0.9 = 450 µs.
        assert_eq!(g.budget(Some(Numerology::Mu1)), us(450));
        // µ=0: 1 ms TTI × 0.9 = 900 µs.
        assert_eq!(g.budget(Some(Numerology::Mu0)), us(900));
        // Pre-MIB default is µ=1.
        assert_eq!(g.budget(None), us(450));
        let g = OverloadGovernor::new(GovernorConfig {
            budget_us_override: Some(123.0),
            ..GovernorConfig::default()
        });
        assert_eq!(g.budget(Some(Numerology::Mu0)), us(123));
    }

    #[test]
    fn disabled_governor_counts_misses_but_never_transitions() {
        let mut g = OverloadGovernor::new(GovernorConfig {
            enabled: false,
            ..cfg()
        });
        let b = us(500);
        for s in 0..200 {
            let v = g.on_slot(s, us(2000), b);
            assert!(v.missed);
            assert_eq!(v.transition, None);
        }
        assert_eq!(g.rung(), LoadRung::Full);
    }

    #[test]
    fn sustained_overload_walks_down_the_ladder() {
        let mut g = OverloadGovernor::new(cfg());
        let b = us(500);
        let mut rungs = vec![];
        for s in 0..64 {
            if let Some((_, to)) = g.on_slot(s, us(2000), b).transition {
                rungs.push(to);
            }
        }
        assert_eq!(
            rungs,
            vec![
                LoadRung::PrunedSearch,
                LoadRung::BroadcastOnly,
                LoadRung::Shedding
            ],
            "one rung at a time, in order"
        );
        assert_eq!(g.rung(), LoadRung::Shedding);
        // Shedding is the floor: no further transition.
        for s in 64..128 {
            assert_eq!(g.on_slot(s, us(2000), b).transition, None);
        }
    }

    #[test]
    fn one_cheap_slot_does_not_reset_the_overload_view() {
        let mut g = OverloadGovernor::new(cfg());
        let b = us(500);
        // Alternate expensive/idle slots: the EWMA stays over budget, so
        // the ladder still demotes even though raw latency dips.
        let mut demoted = false;
        for s in 0..64 {
            let lat = if s % 4 == 3 { us(100) } else { us(2000) };
            if g.on_slot(s, lat, b).transition.is_some() {
                demoted = true;
                break;
            }
        }
        assert!(demoted, "EWMA hysteresis sees through idle slots");
    }

    #[test]
    fn recovery_requires_a_consecutive_in_budget_run() {
        let mut g = OverloadGovernor::new(cfg());
        let b = us(500);
        // Constant overload that no rung alleviates: the ladder bottoms
        // out (the EWMA stays hot through each demotion, so degradation
        // keeps going until the floor).
        let mut slot = 0u64;
        while g.rung() != LoadRung::Shedding {
            g.on_slot(slot, us(2000), b);
            slot += 1;
            assert!(slot < 100, "ladder reaches the floor under overload");
        }
        // In-budget slots: the EWMA must decay AND the 20-slot run must
        // complete before the first climb.
        let recovery_start = slot;
        let mut promoted_at = None;
        for _ in 0..400 {
            if let Some((from, to)) = g.on_slot(slot, us(100), b).transition {
                assert_eq!(from, LoadRung::Shedding);
                assert_eq!(to, LoadRung::BroadcastOnly);
                promoted_at = Some(slot);
                break;
            }
            slot += 1;
        }
        let promoted_at = promoted_at.expect("promoted");
        assert!(
            promoted_at - recovery_start >= 20,
            "promotion at {} needed the full run",
            promoted_at
        );
    }

    #[test]
    fn flapping_backs_off_exponentially_and_decays() {
        let mut g = OverloadGovernor::new(cfg());
        let b = us(500);
        let mut slot = 0u64;
        let run = |g: &mut OverloadGovernor, slot: &mut u64, lat: Duration, until: &str| {
            for _ in 0..10_000 {
                let v = g.on_slot(*slot, lat, b);
                *slot += 1;
                if let Some((_, to)) = v.transition {
                    if to.name() == until {
                        return;
                    }
                }
            }
            panic!("never reached {until}");
        };
        // Demote to PrunedSearch, recover to Full (no flap yet).
        run(&mut g, &mut slot, us(2000), "pruned_search");
        run(&mut g, &mut slot, us(100), "full");
        assert_eq!(g.backoff_exp(), 0);
        // Overload again immediately: the demotion lands inside the flap
        // window, so the backoff exponent climbs.
        run(&mut g, &mut slot, us(2000), "pruned_search");
        assert_eq!(g.backoff_exp(), 1);
        assert_eq!(g.promotion_run(), 40, "run doubled");
        let before = slot;
        run(&mut g, &mut slot, us(100), "full");
        assert!(slot - before >= 40, "promotion respected the backoff");
        // A long calm stretch decays the backoff on the next promotion.
        for _ in 0..200 {
            g.on_slot(slot, us(100), b);
            slot += 1;
        }
        assert_eq!(g.backoff_exp(), 0, "decayed after calm promotion");
    }

    #[test]
    fn repeated_flap_cycles_grow_backoff_to_the_cap() {
        // A wide flap window so every demotion in the cycle counts as a
        // flap and no calm decay fires between cycles: the exponent must
        // climb one step per cycle and saturate at max_backoff_exp.
        let mut g = OverloadGovernor::new(GovernorConfig {
            flap_window_slots: 1_000,
            ..cfg()
        });
        let b = us(500);
        let mut slot = 0u64;
        let run = |g: &mut OverloadGovernor, slot: &mut u64, lat: Duration, until: &str| {
            for _ in 0..10_000 {
                let v = g.on_slot(*slot, lat, b);
                *slot += 1;
                if let Some((_, to)) = v.transition {
                    if to.name() == until {
                        return;
                    }
                }
            }
            panic!("never reached {until}");
        };
        // Mild overload (600 µs against a 500 µs budget) so the EWMA
        // hangover after a demotion clears within a few calm slots and
        // each cycle takes exactly one demotion.
        // First demotion has no preceding promotion: not a flap.
        run(&mut g, &mut slot, us(600), "pruned_search");
        assert_eq!(g.backoff_exp(), 0);
        run(&mut g, &mut slot, us(100), "full");
        for cycle in 1..=5u32 {
            run(&mut g, &mut slot, us(600), "pruned_search");
            let expected = cycle.min(3);
            assert_eq!(g.backoff_exp(), expected, "cycle {cycle}");
            assert_eq!(
                g.promotion_run(),
                20u64 << expected,
                "promotion run doubles per flap, capped (cycle {cycle})"
            );
            run(&mut g, &mut slot, us(100), "full");
        }
    }

    #[test]
    fn calm_windows_decay_backoff_stepwise_across_promotions() {
        // A tighter flap window than the promotion runs it gates, so the
        // climb out of Shedding (80 + 40 + 20 calm slots at backoff 2)
        // qualifies every promotion for one decay step.
        let mut g = OverloadGovernor::new(GovernorConfig {
            flap_window_slots: 60,
            ..cfg()
        });
        let b = us(500);
        let mut slot = 0u64;
        let run = |g: &mut OverloadGovernor, slot: &mut u64, lat: Duration, until: &str| {
            for _ in 0..10_000 {
                let v = g.on_slot(*slot, lat, b);
                *slot += 1;
                if let Some((_, to)) = v.transition {
                    if to.name() == until {
                        return;
                    }
                }
            }
            panic!("never reached {until}");
        };
        // Earn a backoff of 2 by flapping twice at the Broadcast/Shedding
        // boundary (each demotion lands right after a promotion).
        run(&mut g, &mut slot, us(600), "shedding");
        run(&mut g, &mut slot, us(100), "broadcast_only");
        run(&mut g, &mut slot, us(600), "shedding");
        assert_eq!(g.backoff_exp(), 1);
        run(&mut g, &mut slot, us(100), "broadcast_only");
        run(&mut g, &mut slot, us(600), "shedding");
        assert_eq!(g.backoff_exp(), 2);
        // Sustained calm: each promotion that lands more than a flap
        // window after the last demotion sheds one exponent step, so the
        // backoff unwinds stepwise (2 → 1 → 0), not all at once.
        let mut exps = vec![];
        for _ in 0..10_000 {
            let v = g.on_slot(slot, us(100), b);
            slot += 1;
            if v.transition.is_some() {
                exps.push(g.backoff_exp());
            }
            if g.rung() == LoadRung::Full {
                break;
            }
        }
        assert_eq!(
            exps,
            vec![1, 0, 0],
            "one decay step per calm promotion on the climb to Full"
        );
        assert_eq!(g.promotion_run(), 20, "fully recovered probe cadence");
    }

    #[test]
    fn search_budget_follows_the_rung_and_protects_broadcast() {
        let mut g = OverloadGovernor::new(cfg());
        assert!(g.search_budget().is_unlimited());
        g.force(Some(LoadRung::PrunedSearch));
        let budget = g.search_budget();
        assert!(!budget.admits_ue(AggregationLevel::L1, 0));
        assert!(budget.admits_ue(AggregationLevel::L2, 0));
        g.force(Some(LoadRung::BroadcastOnly));
        assert!(g.search_budget().skip_ue);
        g.force(Some(LoadRung::Shedding));
        // Even at the floor the budget only skips UE decodes — the common
        // search space is never pruned by any rung.
        assert!(g.search_budget().skip_ue);
        g.force(None);
        assert_eq!(g.rung(), LoadRung::Full);
    }

    #[test]
    fn dropped_slots_count_as_overload() {
        let mut g = OverloadGovernor::new(cfg());
        let b = us(500);
        let mut demoted = false;
        for s in 0..16 {
            let v = g.on_dropped_slot(s, b);
            assert!(v.missed);
            if v.transition.is_some() {
                demoted = true;
            }
        }
        assert!(demoted, "a run of dropped slots demotes the ladder");
    }

    #[test]
    fn load_model_is_linear_in_work() {
        let m = LoadModel {
            base: us(60),
            per_candidate: us(10),
            per_ue_hypothesis: us(40),
        };
        let w = DecodeWork {
            candidates: 3,
            ue_candidates: 2,
            ue_hypotheses: 5,
            pruned: 0,
            validation_rejects: 0,
        };
        assert_eq!(m.latency(&w), us(60 + 30 + 200));
        assert_eq!(m.latency(&DecodeWork::default()), us(60));
    }
}
