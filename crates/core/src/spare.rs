//! Fair-share spare-capacity estimation (paper §5.4.1, Fig 14).
//!
//! "In each TTI, we can split unused REs evenly across UEs and recalculate
//! these REs to yield a fair-share spare capacity attributable to each UE…
//! the calculated spare bit rates are different because two UEs have
//! different modulation and coding rates in the same TTI."

use nr_phy::mcs::McsTable;
use nr_phy::numerology::SUBCARRIERS_PER_PRB;
use nr_phy::types::Rnti;
use serde::{Deserialize, Serialize};

/// Per-TTI spare-capacity result for one UE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpareShare {
    /// The UE.
    pub rnti: Rnti,
    /// REs the UE actually used this TTI.
    pub used_res: usize,
    /// Fair share of the unused REs.
    pub spare_res: usize,
    /// Spare capacity in bits, at the UE's own spectral efficiency.
    pub spare_bits: f64,
}

/// One UE's usage within a TTI, as decoded from its DCI.
#[derive(Debug, Clone, Copy)]
pub struct UeUsage {
    /// The UE.
    pub rnti: Rnti,
    /// PRBs × symbols × 12 REs occupied by its grant.
    pub used_res: usize,
    /// The MCS its grant used (sets the spare-to-bits conversion).
    pub mcs: u8,
    /// Layers.
    pub layers: usize,
}

/// Compute the fair-share spare capacity of one TTI.
///
/// `total_data_res` is the PDSCH capacity of the slot (carrier PRBs ×
/// data symbols × 12). UEs beyond the decoded ones are unknown to the
/// sniffer, exactly as in the paper.
pub fn spare_capacity(
    usages: &[UeUsage],
    total_data_res: usize,
    table: McsTable,
) -> Vec<SpareShare> {
    if usages.is_empty() {
        return Vec::new();
    }
    let used: usize = usages.iter().map(|u| u.used_res).sum();
    let spare = total_data_res.saturating_sub(used);
    let share = spare / usages.len();
    usages
        .iter()
        .map(|u| {
            let eff = table.entry(u.mcs).map(|e| e.efficiency()).unwrap_or(0.0);
            SpareShare {
                rnti: u.rnti,
                used_res: u.used_res,
                spare_res: share,
                spare_bits: share as f64 * eff * u.layers as f64,
            }
        })
        .collect()
}

/// [`spare_capacity`] with an exclusion list: usages attributed to
/// `excluded` RNTIs (quarantined ghosts — CRC-collision phantoms that
/// were never admitted) are dropped *before* the fair-share split, so a
/// ghost neither absorbs a share of the spare REs nor contributes its
/// bogus grant to the used total.
pub fn spare_capacity_excluding(
    usages: &[UeUsage],
    excluded: &[Rnti],
    total_data_res: usize,
    table: McsTable,
) -> Vec<SpareShare> {
    if excluded.is_empty() {
        return spare_capacity(usages, total_data_res, table);
    }
    let legit: Vec<UeUsage> = usages
        .iter()
        .filter(|u| !excluded.contains(&u.rnti))
        .copied()
        .collect();
    spare_capacity(&legit, total_data_res, table)
}

/// PDSCH RE capacity of one downlink slot.
pub fn slot_data_res(carrier_prbs: usize, data_symbols: usize) -> usize {
    carrier_prbs * data_symbols * SUBCARRIERS_PER_PRB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_but_different_bits() {
        // The paper's observation: same spare REs, different spare bits
        // because the UEs run different MCS.
        let usages = [
            UeUsage {
                rnti: Rnti(1),
                used_res: 1000,
                mcs: 27,
                layers: 2,
            },
            UeUsage {
                rnti: Rnti(2),
                used_res: 500,
                mcs: 5,
                layers: 2,
            },
        ];
        let total = slot_data_res(51, 12);
        let shares = spare_capacity(&usages, total, McsTable::Qam256);
        assert_eq!(shares[0].spare_res, shares[1].spare_res);
        assert!(shares[0].spare_bits > shares[1].spare_bits);
    }

    #[test]
    fn fully_loaded_slot_has_no_spare() {
        let total = slot_data_res(51, 12);
        let usages = [UeUsage {
            rnti: Rnti(1),
            used_res: total,
            mcs: 10,
            layers: 1,
        }];
        let shares = spare_capacity(&usages, total, McsTable::Qam256);
        assert_eq!(shares[0].spare_res, 0);
        assert_eq!(shares[0].spare_bits, 0.0);
    }

    #[test]
    fn empty_usage_list_yields_nothing() {
        assert!(spare_capacity(&[], 1000, McsTable::Qam64).is_empty());
    }

    #[test]
    fn slot_capacity_formula() {
        // 51 PRB × 12 symbols × 12 subcarriers = 7344 REs.
        assert_eq!(slot_data_res(51, 12), 7344);
    }

    #[test]
    fn quarantined_ghost_is_excluded_from_fair_share() {
        // Regression: a ghost UE admitted from a single chance CRC pass
        // used to soak up a fair share of the spare REs and inject a
        // phantom grant into the used total. Excluding it must give the
        // same result as if the ghost never decoded.
        let legit = UeUsage {
            rnti: Rnti(0x4601),
            used_res: 1000,
            mcs: 20,
            layers: 2,
        };
        let ghost = UeUsage {
            rnti: Rnti(0x7F2A),
            used_res: 3000,
            mcs: 3,
            layers: 1,
        };
        let total = slot_data_res(51, 12);
        let polluted = spare_capacity(&[legit, ghost], total, McsTable::Qam256);
        let cleaned =
            spare_capacity_excluding(&[legit, ghost], &[ghost.rnti], total, McsTable::Qam256);
        let truth = spare_capacity(&[legit], total, McsTable::Qam256);
        assert_eq!(cleaned, truth, "exclusion restores the ghost-free result");
        assert_eq!(cleaned.len(), 1);
        // And the pollution was real: the ghost both halved the share and
        // shrank the spare pool.
        assert!(polluted[0].spare_res < cleaned[0].spare_res);
        // An empty exclusion list is the plain computation.
        assert_eq!(
            spare_capacity_excluding(&[legit, ghost], &[], total, McsTable::Qam256),
            polluted
        );
    }

    #[test]
    fn overcommitted_usage_saturates_to_zero_spare() {
        let usages = [UeUsage {
            rnti: Rnti(1),
            used_res: 10_000,
            mcs: 10,
            layers: 1,
        }];
        let shares = spare_capacity(&usages, 7344, McsTable::Qam256);
        assert_eq!(shares[0].spare_res, 0);
    }
}
