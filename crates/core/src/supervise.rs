//! Supervised warm restart: run the scope pipeline in a child process,
//! detect death, and resume from the latest valid checkpoint.
//!
//! The supervisor (parent) owns the radio front end and feeds captures to
//! a child over a line-oriented JSONL pipe protocol; the child wraps the
//! scope in a [`PersistentSession`], whose group-commit journal makes
//! slots durable in batches — each [`Ack`] reports both the processing
//! watermark and the durable watermark, so the parent knows exactly which
//! tail a `kill -9` can cost (bounded by
//! [`PersistConfig::loss_window_slots`]).
//! When the child dies (crash, OOM-kill, `kill -9`), the parent respawns
//! it; [`run_child`] recovers from the session directory and announces —
//! via [`Hello`] — what it restored, so the parent can verify that no
//! known UE was dropped and resume feeding from the watermark. Slots the
//! child already journalled are acknowledged without reprocessing, so a
//! replayed feed never double-counts bytes.

use crate::config::ScopeConfig;
use crate::observe::{Capture, DropReason};
use crate::persist::{PersistConfig, PersistentSession, RecoveryReport};
use crate::scope::SyncState;
use crate::telemetry::TelemetryRecord;
use nr_phy::types::{Pci, Rnti};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Name of the scope-config file the parent drops in the session
/// directory; the child loads it through [`ScopeConfig::from_json`] so a
/// restart picks up the operator's current (possibly edited) config.
pub const CONFIG_FILE: &str = "scope_config.json";

/// Parent → child messages, one JSON object per line on the child's stdin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireMsg {
    /// One capture for slot `seq`. The child gap-fills any slots it never
    /// saw (dead time while it was being restarted) as dropped slots so
    /// its watermark tracks the parent's clock.
    Slot {
        /// Parent-side slot sequence number.
        seq: u64,
        /// The capture for that slot.
        capture: Capture,
    },
    /// Ask for per-UE byte accounting over slot ranges (parity audits).
    Report {
        /// Half-open slot ranges `[start, end)`.
        ranges: Vec<(u64, u64)>,
    },
    /// Clean shutdown: final checkpoint, then exit.
    Finish,
}

/// First line the child prints after recovery — what a warm restart found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hello {
    /// UEs tracked immediately after recovery.
    pub tracked: Vec<Rnti>,
    /// Full recovery report (snapshot slot, replay counts, watermark).
    pub report: RecoveryReport,
}

/// Per-slot acknowledgement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ack {
    /// The sequence number being acknowledged.
    pub seq: u64,
    /// Child watermark after processing (next slot it expects).
    pub watermark: u64,
    /// Sync-health state after the slot.
    pub sync: SyncState,
    /// Telemetry records the slot produced (0 when the slot was already
    /// journalled before a crash and is merely re-acknowledged).
    pub produced: u64,
    /// UEs currently tracked.
    pub tracked: Vec<Rnti>,
    /// Durable watermark: slots below this are in the OS and survive a
    /// `kill -9`. Trails `watermark` by at most the group-commit loss
    /// window ([`PersistConfig::loss_window_slots`]). Defaults to 0 when
    /// talking to a pre-group-commit child, which acked only after its
    /// per-slot flush.
    #[serde(default)]
    pub durable: u64,
    /// Current durability-ladder rung, as
    /// [`DurabilityRung`](crate::persist::DurabilityRung) `as u8`
    /// (0 = Durable, 1 = DurableDegraded, 2 = NonDurable). Defaults to 0
    /// for pre-storage-fault children, whose only rung was "durable".
    #[serde(default)]
    pub durability_rung: u8,
    /// The loss window the child honestly promises right now: `Some(n)` =
    /// a `kill -9` loses at most `n` slots; `None` = unbounded (the child
    /// is `NonDurable` — its disk is gone and nothing is being journalled).
    /// Defaults to `None` for pre-storage-fault children.
    #[serde(default)]
    pub loss_window: Option<u64>,
}

/// Reply to [`WireMsg::Report`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportReply {
    /// For each tracked UE, estimated delivered bits per requested range.
    pub per_ue: Vec<(Rnti, Vec<u64>)>,
    /// Distinct UEs ever discovered by this session (crash-stable).
    pub total_discovered: u64,
}

/// Child → parent messages, one JSON object per line on the child's stdout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ChildMsg {
    /// Recovery announcement (always the first line).
    Hello(Hello),
    /// Slot acknowledgement.
    Ack(Ack),
    /// Byte-accounting reply.
    Report(ReportReply),
    /// Clean shutdown complete; the final durable slot.
    Done {
        /// Slot of the final checkpoint.
        final_slot: u64,
    },
}

/// Child main loop: recover the session from `dir`, announce [`Hello`],
/// then process [`WireMsg`] lines from stdin until `Finish` or EOF.
///
/// Replay safety: a `Slot` whose `seq` is below the watermark was already
/// processed and journalled by a previous incarnation — it is acknowledged
/// without reprocessing, so its bytes are never counted twice. A `seq`
/// above the watermark gap-fills the missed slots as dropped captures
/// (the child was dead while the air interface kept moving).
pub fn run_child(dir: &Path, assumed_pci: Option<Pci>) -> io::Result<()> {
    let scope_cfg = match std::fs::read_to_string(dir.join(CONFIG_FILE)) {
        Ok(s) => ScopeConfig::from_json(&s).map_err(io::Error::from)?,
        Err(_) => ScopeConfig::default(),
    };
    let (mut session, report) =
        PersistentSession::open(PersistConfig::new(dir), scope_cfg, assumed_pci)?;
    let stdout = io::stdout();
    let mut out = stdout.lock();
    send_line(
        &mut out,
        &ChildMsg::Hello(Hello {
            tracked: session.scope().tracked_rntis(),
            report,
        }),
    )?;
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let msg: WireMsg = match serde_json::from_str(&line) {
            Ok(m) => m,
            Err(_) => continue,
        };
        match msg {
            WireMsg::Slot { seq, capture } => {
                let mut produced: Vec<TelemetryRecord> = Vec::new();
                if seq >= session.scope().slot_watermark() {
                    while session.scope().slot_watermark() < seq {
                        session.process_capture(&Capture::Dropped(DropReason::Stall));
                    }
                    produced = session.process_capture(&capture);
                }
                let ack = Ack {
                    seq,
                    watermark: session.scope().slot_watermark(),
                    sync: session.scope().sync_state(),
                    produced: produced.len() as u64,
                    tracked: session.scope().tracked_rntis(),
                    durable: session.durable_watermark(),
                    durability_rung: session.durability_rung() as u8,
                    loss_window: session.reported_loss_window(),
                };
                send_line(&mut out, &ChildMsg::Ack(ack))?;
            }
            WireMsg::Report { ranges } => {
                let scope = session.scope();
                let per_ue = scope
                    .tracked_rntis()
                    .into_iter()
                    .map(|rnti| {
                        let bits = ranges
                            .iter()
                            .map(|&(a, b)| scope.estimated_bits(rnti, a..b))
                            .collect();
                        (rnti, bits)
                    })
                    .collect();
                let reply = ReportReply {
                    per_ue,
                    total_discovered: scope.total_discovered(),
                };
                send_line(&mut out, &ChildMsg::Report(reply))?;
            }
            WireMsg::Finish => {
                let final_slot = session.finalize()?;
                send_line(&mut out, &ChildMsg::Done { final_slot })?;
                return Ok(());
            }
        }
    }
    // EOF without Finish: the parent died or closed the pipe. State up to
    // the last processed slot is already journalled; checkpoint and leave.
    let _ = session.finalize();
    Ok(())
}

fn send_line<W: Write>(w: &mut W, msg: &ChildMsg) -> io::Result<()> {
    let json = serde_json::to_string(msg).map_err(io::Error::from)?;
    writeln!(w, "{json}")?;
    w.flush()
}

/// Parent-side handle on a spawned pipeline child: line-framed send/recv
/// plus hard kill (SIGKILL — the crash being simulated, not a clean stop).
pub struct ChildHandle {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ChildHandle {
    /// Spawn `exe args…` with piped stdio and wait for its [`Hello`].
    pub fn spawn(exe: &Path, args: &[String]) -> io::Result<(ChildHandle, Hello)> {
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped child stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped child stdout"));
        let mut handle = ChildHandle {
            child,
            stdin,
            stdout,
        };
        match handle.recv()? {
            ChildMsg::Hello(h) => Ok((handle, h)),
            other => Err(io::Error::other(format!(
                "child's first message was not Hello: {other:?}"
            ))),
        }
    }

    /// Send one message to the child.
    pub fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        let json = serde_json::to_string(msg).map_err(io::Error::from)?;
        writeln!(self.stdin, "{json}")?;
        self.stdin.flush()
    }

    /// Receive the child's next message (blocking). EOF — the child died —
    /// surfaces as `UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<ChildMsg> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "child closed its stdout (died?)",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim()).map_err(io::Error::from);
        }
    }

    /// SIGKILL the child and reap it. This is the simulated crash: no
    /// flush, no destructor, no goodbye.
    pub fn kill(&mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }

    /// Wait for the child to exit on its own (after `Finish`/`Done`).
    pub fn wait(mut self) -> io::Result<std::process::ExitStatus> {
        drop(self.stdin);
        self.child.wait()
    }
}
