//! Supervised warm restart: run the scope pipeline in a child process,
//! detect death *and hangs*, and resume from the latest valid checkpoint.
//!
//! The supervisor (parent) owns the radio front end and feeds captures to
//! a child over a line-oriented JSONL pipe protocol; the child wraps the
//! scope in a [`PersistentSession`], whose group-commit journal makes
//! slots durable in batches — each [`Ack`] reports both the processing
//! watermark and the durable watermark, so the parent knows exactly which
//! tail a `kill -9` can cost (bounded by
//! [`PersistConfig::loss_window_slots`]).
//!
//! Liveness: the child emits [`ChildMsg::Heartbeat`] whenever it has been
//! busy longer than `supervise.heartbeat_interval_ms` without writing a
//! line (deep gap-fills, slow slots), so the parent can tell *busy* from
//! *wedged*. [`ChildHandle::recv_timeout`] bounds every read; the
//! [`Supervisor`] classifies silence past `supervise.hang_deadline_ms` as
//! a hang — force-kill, count it, warm-restart exactly like a crash. A
//! token-bucket [`RestartBreaker`] meters respawns so a crash loop parks
//! the child in lame-duck mode (slots dropped honestly, one half-open
//! probe after backoff) instead of restart-storming.
//!
//! Framing: a truncated, corrupt, or oversized line from the child is a
//! typed [`WireError`] — counted, the stream re-synced at the next
//! newline — never an aborted session.

use crate::chaos::{ChaosChildPlan, HangTarget, CHAOS_PLAN_FILE};
use crate::config::{ScopeConfig, SuperviseConfig};
use crate::metrics::{Counter, Gauge, Metrics};
use crate::observe::{Capture, DropReason};
use crate::persist::{FaultyBackend, PersistConfig, PersistentSession, RecoveryReport};
use crate::scope::SyncState;
use crate::telemetry::TelemetryRecord;
use crossbeam::channel::{unbounded, Receiver, TryRecvError};
use nr_phy::types::{Pci, Rnti};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Name of the scope-config file the parent drops in the session
/// directory; the child loads it through [`ScopeConfig::from_json`] so a
/// restart picks up the operator's current (possibly edited) config.
pub const CONFIG_FILE: &str = "scope_config.json";

/// Hard bound on one JSONL frame from the child. A line longer than this
/// is discarded as [`WireError::Oversized`] and the stream re-syncs at the
/// next newline — a runaway or corrupted child must not balloon the
/// parent's memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Poll granularity of deadline-bounded reads (matches the worker pool's
/// prioritised-recv poll).
const RECV_POLL: Duration = Duration::from_micros(200);

/// Parent → child messages, one JSON object per line on the child's stdin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireMsg {
    /// One capture for slot `seq`. The child gap-fills any slots it never
    /// saw (dead time while it was being restarted) as dropped slots so
    /// its watermark tracks the parent's clock.
    Slot {
        /// Parent-side slot sequence number.
        seq: u64,
        /// The capture for that slot.
        capture: Capture,
    },
    /// Ask for per-UE byte accounting over slot ranges (parity audits).
    Report {
        /// Half-open slot ranges `[start, end)`.
        ranges: Vec<(u64, u64)>,
    },
    /// Clean shutdown: final checkpoint, then exit.
    Finish,
}

/// First line the child prints after recovery — what a warm restart found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hello {
    /// UEs tracked immediately after recovery.
    pub tracked: Vec<Rnti>,
    /// Full recovery report (snapshot slot, replay counts, watermark).
    pub report: RecoveryReport,
}

/// Per-slot acknowledgement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ack {
    /// The sequence number being acknowledged.
    pub seq: u64,
    /// Child watermark after processing (next slot it expects).
    pub watermark: u64,
    /// Sync-health state after the slot.
    pub sync: SyncState,
    /// Telemetry records the slot produced (0 when the slot was already
    /// journalled before a crash and is merely re-acknowledged).
    pub produced: u64,
    /// UEs currently tracked.
    pub tracked: Vec<Rnti>,
    /// Durable watermark: slots below this are in the OS and survive a
    /// `kill -9`. Trails `watermark` by at most the group-commit loss
    /// window ([`PersistConfig::loss_window_slots`]). Defaults to 0 when
    /// talking to a pre-group-commit child, which acked only after its
    /// per-slot flush.
    #[serde(default)]
    pub durable: u64,
    /// Current durability-ladder rung, as
    /// [`DurabilityRung`](crate::persist::DurabilityRung) `as u8`
    /// (0 = Durable, 1 = DurableDegraded, 2 = NonDurable). Defaults to 0
    /// for pre-storage-fault children, whose only rung was "durable".
    #[serde(default)]
    pub durability_rung: u8,
    /// The loss window the child honestly promises right now: `Some(n)` =
    /// a `kill -9` loses at most `n` slots; `None` = unbounded (the child
    /// is `NonDurable` — its disk is gone and nothing is being journalled).
    /// Defaults to `None` for pre-storage-fault children.
    #[serde(default)]
    pub loss_window: Option<u64>,
    /// Cumulative SI-RNTI DCIs decoded by the child (crash-stable via the
    /// checkpointed stats). The chaos never-go-dark monitor watches this
    /// advance while broadcast traffic is on the air. Defaults to 0 for
    /// pre-liveness children.
    #[serde(default)]
    pub si_dcis: u64,
}

/// Reply to [`WireMsg::Report`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportReply {
    /// For each tracked UE, estimated delivered bits per requested range.
    pub per_ue: Vec<(Rnti, Vec<u64>)>,
    /// Distinct UEs ever discovered by this session (crash-stable).
    pub total_discovered: u64,
}

/// Child → parent messages, one JSON object per line on the child's stdout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ChildMsg {
    /// Recovery announcement (always the first line).
    Hello(Hello),
    /// Slot acknowledgement.
    Ack(Ack),
    /// Byte-accounting reply.
    Report(ReportReply),
    /// Liveness beacon: emitted between acks whenever the child has been
    /// busy past its heartbeat interval without writing a line, so the
    /// parent can tell a deep gap-fill from a wedge.
    Heartbeat {
        /// Child watermark at emission.
        slot: u64,
        /// Durable watermark at emission.
        durable_watermark: u64,
    },
    /// Clean shutdown complete; the final durable slot.
    Done {
        /// Slot of the final checkpoint.
        final_slot: u64,
    },
}

// ---------------------------------------------------------------------------
// Tolerant line framing
// ---------------------------------------------------------------------------

/// A framing fault on the supervise pipe. Never fatal: the decoder counts
/// it and re-syncs at the next newline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-line (EOF without a terminating newline).
    Truncated,
    /// A line exceeded [`MAX_FRAME_BYTES`]; its bytes were discarded up to
    /// the next newline. Carries the number of bytes thrown away so far.
    Oversized(usize),
    /// A complete line that did not parse as a protocol message.
    Malformed,
}

impl WireError {
    /// Stable snake_case name for notes and reports.
    pub fn name(self) -> &'static str {
        match self {
            WireError::Truncated => "truncated",
            WireError::Oversized(_) => "oversized",
            WireError::Malformed => "malformed",
        }
    }
}

/// One decoded frame, or the fault that took its place.
#[derive(Debug)]
pub enum Frame {
    /// A parsed child message.
    Msg(Box<ChildMsg>),
    /// A framing fault (counted; the stream is already re-synced).
    Err(WireError),
}

/// Incremental, tolerant JSONL decoder for the child's stdout: push raw
/// pipe bytes in, pop [`Frame`]s out. Garbage between newlines — a
/// corrupted line, interleaved non-protocol output, a line above
/// [`MAX_FRAME_BYTES`] — becomes a typed [`WireError`] and the decoder
/// re-syncs at the next newline instead of poisoning the session.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Inside an oversized line: discard until the next newline.
    skipping: usize,
    errors: u64,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default [`MAX_FRAME_BYTES`] bound.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_max_frame(MAX_FRAME_BYTES)
    }

    /// A decoder with a custom frame bound (tests shrink it).
    pub fn with_max_frame(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            skipping: 0,
            errors: 0,
            max_frame: max_frame.max(2),
        }
    }

    /// Framing faults seen so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Feed raw bytes; call [`FrameDecoder::next_frame`] until it returns
    /// `None` to drain.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            let nl = self.buf.iter().position(|&b| b == b'\n');
            if self.skipping > 0 {
                // Mid-oversized-line: throw bytes away until a newline
                // re-syncs the stream.
                match nl {
                    Some(i) => {
                        let thrown = self.skipping + i;
                        self.buf.drain(..=i);
                        self.skipping = 0;
                        self.errors += 1;
                        return Some(Frame::Err(WireError::Oversized(thrown)));
                    }
                    None => {
                        self.skipping += self.buf.len();
                        self.buf.clear();
                        return None;
                    }
                }
            }
            match nl {
                None if self.buf.len() > self.max_frame => {
                    // No newline yet and already over budget: enter skip
                    // mode so the buffer cannot grow unboundedly.
                    self.skipping = self.buf.len();
                    self.buf.clear();
                    return None;
                }
                None => return None,
                Some(i) if i > self.max_frame => {
                    self.buf.drain(..=i);
                    self.errors += 1;
                    return Some(Frame::Err(WireError::Oversized(i)));
                }
                Some(i) => {
                    let line: Vec<u8> = self.buf.drain(..=i).collect();
                    let text = String::from_utf8_lossy(&line[..i]);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<ChildMsg>(trimmed) {
                        Ok(msg) => return Some(Frame::Msg(Box::new(msg))),
                        Err(_) => {
                            self.errors += 1;
                            return Some(Frame::Err(WireError::Malformed));
                        }
                    }
                }
            }
        }
    }

    /// Signal EOF: leftover bytes that never saw their newline are a
    /// [`WireError::Truncated`] (the child died mid-write).
    pub fn finish(&mut self) -> Option<WireError> {
        if self.skipping > 0 || !self.buf.iter().all(|b| b.is_ascii_whitespace()) {
            self.buf.clear();
            self.skipping = 0;
            self.errors += 1;
            return Some(WireError::Truncated);
        }
        self.buf.clear();
        None
    }
}

// ---------------------------------------------------------------------------
// Child main loop
// ---------------------------------------------------------------------------

/// Child-side writer: tracks when the last line went out so heartbeats
/// fire only when the pipe has actually been silent.
struct ChildIo<W: Write> {
    out: W,
    last_write: Instant,
    interval: Duration,
}

impl<W: Write> ChildIo<W> {
    fn send(&mut self, msg: &ChildMsg) -> io::Result<()> {
        let json = serde_json::to_string(msg).map_err(io::Error::from)?;
        writeln!(self.out, "{json}")?;
        self.out.flush()?;
        self.last_write = Instant::now();
        Ok(())
    }

    /// Emit a heartbeat iff the pipe has been silent past the interval.
    fn heartbeat_if_due(&mut self, slot: u64, durable_watermark: u64) -> io::Result<()> {
        if self.last_write.elapsed() >= self.interval {
            self.send(&ChildMsg::Heartbeat {
                slot,
                durable_watermark,
            })?;
        }
        Ok(())
    }
}

/// Child-side chaos state: scripted hangs, overload dwell, and storage
/// windows from the session directory's plan file (absent in normal runs).
struct ChildChaos {
    plan: ChaosChildPlan,
    backend: Option<FaultyBackend>,
    storage_armed: Vec<bool>,
}

impl ChildChaos {
    fn load(dir: &Path) -> Option<ChildChaos> {
        let text = std::fs::read_to_string(dir.join(CHAOS_PLAN_FILE)).ok()?;
        let plan = ChaosChildPlan::from_json(&text).ok()?;
        let storage_armed = vec![false; plan.storage_windows.len()];
        Some(ChildChaos {
            plan,
            backend: None,
            storage_armed,
        })
    }

    /// Keep the faulty backend's armed windows in step with the slot clock.
    fn service_storage(&mut self, seq: u64) {
        let Some(backend) = &self.backend else { return };
        let mut any_cleared = false;
        for (i, w) in self.plan.storage_windows.iter().enumerate() {
            if self.storage_armed[i] && seq >= w.until_slot {
                self.storage_armed[i] = false;
                any_cleared = true;
            }
        }
        if any_cleared {
            // clear_faults drops every armed window, so re-arm the ones
            // still live (windows are scripted non-overlapping, but stay
            // correct if they aren't).
            backend.clear_faults();
            for (i, w) in self.plan.storage_windows.iter().enumerate() {
                if self.storage_armed[i] {
                    backend.arm(w.kind, 0..u64::MAX);
                }
            }
        }
        for (i, w) in self.plan.storage_windows.iter().enumerate() {
            if !self.storage_armed[i] && seq >= w.from_slot && seq < w.until_slot {
                self.storage_armed[i] = true;
                backend.arm(w.kind, 0..u64::MAX);
            }
        }
    }
}

/// Child main loop: recover the session from `dir`, announce [`Hello`],
/// then process [`WireMsg`] lines from stdin until `Finish` or EOF.
///
/// Replay safety: a `Slot` whose `seq` is below the watermark was already
/// processed and journalled by a previous incarnation — it is acknowledged
/// without reprocessing, so its bytes are never counted twice. A `seq`
/// above the watermark gap-fills the missed slots as dropped captures
/// (the child was dead while the air interface kept moving).
///
/// If the session directory holds a [`ChaosChildPlan`]
/// ([`CHAOS_PLAN_FILE`]), its scripted hangs, overload dwell, and storage
/// windows are applied — the seeded fault hooks the chaos engine drives.
pub fn run_child(dir: &Path, assumed_pci: Option<Pci>) -> io::Result<()> {
    let scope_cfg = match std::fs::read_to_string(dir.join(CONFIG_FILE)) {
        Ok(s) => ScopeConfig::from_json(&s).map_err(io::Error::from)?,
        Err(_) => ScopeConfig::default(),
    };
    let mut chaos = ChildChaos::load(dir);
    let mut persist_cfg = PersistConfig::new(dir);
    if let Some(c) = chaos.as_mut() {
        if !c.plan.storage_windows.is_empty() {
            let backend =
                FaultyBackend::new(crate::persist::StorageFaultSchedule::new(c.plan.seed));
            persist_cfg = persist_cfg.with_backend(Arc::new(backend.clone()));
            c.backend = Some(backend);
        }
    }
    let (mut session, report) = PersistentSession::open(persist_cfg, scope_cfg, assumed_pci)?;
    let stdout = io::stdout();
    let mut io = ChildIo {
        out: stdout.lock(),
        last_write: Instant::now(),
        interval: Duration::from_millis(scope_cfg.supervise.heartbeat_interval_ms.max(1)),
    };
    io.send(&ChildMsg::Hello(Hello {
        tracked: session.scope().tracked_rntis(),
        report,
    }))?;
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let msg: WireMsg = match serde_json::from_str(&line) {
            Ok(m) => m,
            // Tolerant framing on the child side too: a corrupt line is
            // skipped and the stream re-syncs at the next newline.
            Err(_) => continue,
        };
        match msg {
            WireMsg::Slot { seq, capture } => {
                if let Some(c) = chaos.as_mut() {
                    apply_child_chaos(c, seq, &mut session, &mut io)?;
                }
                let mut produced: Vec<TelemetryRecord> = Vec::new();
                if seq >= session.scope().slot_watermark() {
                    let mut filled = 0u64;
                    while session.scope().slot_watermark() < seq {
                        session.process_capture(&Capture::Dropped(DropReason::Stall));
                        filled += 1;
                        if filled.is_multiple_of(256) {
                            // Deep gap-fill after a long outage: prove
                            // liveness so the parent doesn't read hard
                            // work as a hang.
                            io.heartbeat_if_due(
                                session.scope().slot_watermark(),
                                session.durable_watermark(),
                            )?;
                        }
                    }
                    produced = session.process_capture(&capture);
                }
                let ack = Ack {
                    seq,
                    watermark: session.scope().slot_watermark(),
                    sync: session.scope().sync_state(),
                    produced: produced.len() as u64,
                    tracked: session.scope().tracked_rntis(),
                    durable: session.durable_watermark(),
                    durability_rung: session.durability_rung() as u8,
                    loss_window: session.reported_loss_window(),
                    si_dcis: session.scope().stats.si_dcis,
                };
                io.send(&ChildMsg::Ack(ack))?;
            }
            WireMsg::Report { ranges } => {
                let scope = session.scope();
                let per_ue = scope
                    .tracked_rntis()
                    .into_iter()
                    .map(|rnti| {
                        let bits = ranges
                            .iter()
                            .map(|&(a, b)| scope.estimated_bits(rnti, a..b))
                            .collect();
                        (rnti, bits)
                    })
                    .collect();
                let reply = ReportReply {
                    per_ue,
                    total_discovered: scope.total_discovered(),
                };
                io.send(&ChildMsg::Report(reply))?;
            }
            WireMsg::Finish => {
                let final_slot = session.finalize()?;
                io.send(&ChildMsg::Done { final_slot })?;
                return Ok(());
            }
        }
    }
    // EOF without Finish: the parent died or closed the pipe. State up to
    // the last processed slot is already journalled; checkpoint and leave.
    let _ = session.finalize();
    Ok(())
}

/// Apply the chaos plan's scripted faults for fed slot `seq`.
fn apply_child_chaos<W: Write>(
    chaos: &mut ChildChaos,
    seq: u64,
    session: &mut PersistentSession,
    io: &mut ChildIo<W>,
) -> io::Result<()> {
    chaos.service_storage(seq);
    for p in &chaos.plan.hangs {
        if p.slot != seq {
            continue;
        }
        let dur = Duration::from_millis(p.duration_ms);
        match p.target {
            // The wedge being simulated: the slot loop stops dead — no
            // heartbeats, no acks. The parent must detect and kill us.
            HangTarget::SlotLoop => std::thread::sleep(dur),
            // The journal writer wedges but the slot loop stays live; the
            // durability ladder must demote honestly while batches back
            // up ([`PersistentSession::inject_writer_wedge`]).
            HangTarget::JournalWriter => session.inject_writer_wedge(dur),
            // Shard wedges are a fleet-side fault; not ours.
            HangTarget::FleetShard(_) => {}
        }
    }
    for w in &chaos.plan.overload_windows {
        if seq >= w.from_slot && seq < w.until_slot {
            // Busy-but-alive dwell: sleep in sub-interval steps, emitting
            // heartbeats, exactly like a slow decode would.
            let mut left = Duration::from_micros(w.dwell_us);
            let step = io.interval / 2;
            while !left.is_zero() {
                let chunk = left.min(step.max(Duration::from_micros(50)));
                std::thread::sleep(chunk);
                left = left.saturating_sub(chunk);
                io.heartbeat_if_due(
                    session.scope().slot_watermark(),
                    session.durable_watermark(),
                )?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent-side child handle
// ---------------------------------------------------------------------------

fn eof_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "child closed its stdout (died?)",
    )
}

/// Parent-side handle on a spawned pipeline child: tolerant line-framed
/// send/recv with deadlines, plus hard kill (SIGKILL — the crash being
/// simulated, not a clean stop).
///
/// Reads never block the caller directly: a reader thread drains the
/// child's stdout through a [`FrameDecoder`] into an internal frame
/// buffer, so [`ChildHandle::recv_timeout`] can give up at a deadline
/// even while the pipe itself stays open with a hung child behind it.
pub struct ChildHandle {
    child: Child,
    stdin: ChildStdin,
    frames: Receiver<Frame>,
    reader: Option<JoinHandle<()>>,
    wire_errors: Arc<AtomicU64>,
}

impl ChildHandle {
    /// Spawn `exe args…` with piped stdio and wait for its [`Hello`].
    pub fn spawn(exe: &Path, args: &[String]) -> io::Result<(ChildHandle, Hello)> {
        ChildHandle::spawn_with_env(exe, args, &[], None)
    }

    /// Spawn with extra environment variables and an optional bound on
    /// how long the child may take to announce its [`Hello`] (recovery
    /// included). `None` waits indefinitely, the pre-liveness behaviour.
    pub fn spawn_with_env(
        exe: &Path,
        args: &[String],
        envs: &[(String, String)],
        hello_deadline: Option<Duration>,
    ) -> io::Result<(ChildHandle, Hello)> {
        let mut cmd = Command::new(exe);
        cmd.args(args).stdin(Stdio::piped()).stdout(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn()?;
        let stdin = child.stdin.take().expect("piped child stdin");
        let mut stdout = child.stdout.take().expect("piped child stdout");
        let (tx, rx) = unbounded::<Frame>();
        let wire_errors = Arc::new(AtomicU64::new(0));
        let errs = Arc::clone(&wire_errors);
        let reader = crate::worker::spawn_background("supervise-reader", move || {
            let mut dec = FrameDecoder::new();
            let mut buf = [0u8; 8192];
            loop {
                match stdout.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        dec.push(&buf[..n]);
                        while let Some(frame) = dec.next_frame() {
                            if matches!(frame, Frame::Err(_)) {
                                errs.fetch_add(1, Relaxed);
                            }
                            if tx.send(frame).is_err() {
                                return;
                            }
                        }
                    }
                }
            }
            if let Some(e) = dec.finish() {
                errs.fetch_add(1, Relaxed);
                let _ = tx.send(Frame::Err(e));
            }
            // Dropping `tx` disconnects the channel: the parent reads the
            // disconnect as EOF.
        });
        let mut handle = ChildHandle {
            child,
            stdin,
            frames: rx,
            reader: Some(reader),
            wire_errors,
        };
        let hello = match hello_deadline {
            None => handle.recv()?,
            Some(d) => handle
                .recv_timeout(d)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "no Hello in time"))?,
        };
        match hello {
            ChildMsg::Hello(h) => Ok((handle, h)),
            other => Err(io::Error::other(format!(
                "child's first message was not Hello: {other:?}"
            ))),
        }
    }

    /// Send one message to the child.
    pub fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        let json = serde_json::to_string(msg).map_err(io::Error::from)?;
        writeln!(self.stdin, "{json}")?;
        self.stdin.flush()
    }

    /// Receive the child's next message (blocking). EOF — the child died —
    /// surfaces as `UnexpectedEof`. Framing faults are counted and
    /// skipped, never surfaced as session errors.
    pub fn recv(&mut self) -> io::Result<ChildMsg> {
        loop {
            match self.frames.recv() {
                Ok(Frame::Msg(m)) => return Ok(*m),
                Ok(Frame::Err(_)) => continue,
                Err(_) => return Err(eof_error()),
            }
        }
    }

    /// Receive with a deadline. `Ok(None)` = nothing arrived in time (the
    /// pipe is open but silent — the hang signal); `Err(UnexpectedEof)` =
    /// the child died.
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<ChildMsg>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.frames.try_recv() {
                Ok(Frame::Msg(m)) => return Ok(Some(*m)),
                Ok(Frame::Err(_)) => continue,
                Err(TryRecvError::Disconnected) => return Err(eof_error()),
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(RECV_POLL);
                }
            }
        }
    }

    /// Framing faults ([`WireError`]) tolerated on this connection so far.
    pub fn wire_errors(&self) -> u64 {
        self.wire_errors.load(Relaxed)
    }

    /// SIGKILL the child and reap it. This is the simulated crash: no
    /// flush, no destructor, no goodbye.
    pub fn kill(&mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        self.join_reader();
        Ok(())
    }

    /// Wait for the child to exit on its own (after `Finish`/`Done`).
    /// Unbounded — prefer [`ChildHandle::wait_timeout`], which cannot
    /// deadlock on a child that wedged on its way out.
    pub fn wait(self) -> io::Result<std::process::ExitStatus> {
        let ChildHandle {
            mut child,
            stdin,
            reader,
            ..
        } = self;
        drop(stdin);
        let status = child.wait()?;
        if let Some(h) = reader {
            let _ = h.join();
        }
        Ok(status)
    }

    /// Deadline-bounded wait with SIGKILL escalation: give the child
    /// `timeout` to exit on its own, then kill it rather than blocking
    /// the supervisor forever. Returns the exit status and whether the
    /// escalation fired.
    pub fn wait_timeout(self, timeout: Duration) -> io::Result<(std::process::ExitStatus, bool)> {
        let ChildHandle {
            mut child,
            stdin,
            reader,
            ..
        } = self;
        drop(stdin);
        let join = |r: Option<std::thread::JoinHandle<()>>| {
            if let Some(h) = r {
                let _ = h.join();
            }
        };
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = child.try_wait()? {
                join(reader);
                return Ok((status, false));
            }
            if Instant::now() >= deadline {
                child.kill()?;
                let status = child.wait()?;
                join(reader);
                return Ok((status, true));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn join_reader(&mut self) {
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Restart-storm circuit breaker
// ---------------------------------------------------------------------------

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Restarts flow, metered by the token bucket.
    Closed,
    /// Budget exhausted: restarts parked (lame-duck) until the half-open
    /// backoff elapses.
    Open,
    /// One probe restart granted; its outcome decides Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable snake_case name for notes and reports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Token-bucket restart budget shared by [`Supervisor`] and the fleet's
/// per-shard supervision: `capacity` restarts refill per `window_slots`
/// of feed. Exhaustion opens the breaker — the supervised unit is parked
/// in lame-duck mode instead of hot-looping through respawns — and after
/// `halfopen_after` slots a single probe restart decides whether to close
/// it again. Time is whatever monotonic slot count the owner feeds in.
#[derive(Debug)]
pub struct RestartBreaker {
    capacity: u32,
    window_slots: u64,
    halfopen_after: u64,
    tokens: f64,
    last_refill: u64,
    state: BreakerState,
    opened_at: u64,
    openings: u64,
}

impl RestartBreaker {
    /// A closed breaker with a full bucket. `capacity == 0` disables the
    /// breaker (every acquire is granted).
    pub fn new(capacity: u32, window_slots: u64, halfopen_after: u64) -> RestartBreaker {
        RestartBreaker {
            capacity,
            window_slots: window_slots.max(1),
            halfopen_after: halfopen_after.max(1),
            tokens: capacity as f64,
            last_refill: 0,
            state: BreakerState::Closed,
            opened_at: 0,
            openings: 0,
        }
    }

    fn refill(&mut self, now: u64) {
        if now > self.last_refill {
            let dt = (now - self.last_refill) as f64;
            self.tokens = (self.tokens + dt * self.capacity as f64 / self.window_slots as f64)
                .min(self.capacity as f64);
            self.last_refill = now;
        }
    }

    /// Ask permission to restart at slot `now`. A grant while the state
    /// reads [`BreakerState::HalfOpen`] is the probe — report its outcome
    /// through [`RestartBreaker::probe_result`].
    pub fn try_acquire(&mut self, now: u64) -> bool {
        if self.capacity == 0 {
            return true;
        }
        match self.state {
            BreakerState::Closed => {
                self.refill(now);
                if self.tokens >= 1.0 {
                    self.tokens -= 1.0;
                    true
                } else {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.openings += 1;
                    false
                }
            }
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= self.halfopen_after {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already outstanding; no second restart until its
            // outcome lands.
            BreakerState::HalfOpen => false,
        }
    }

    /// Outcome of the half-open probe restart: success closes the breaker
    /// (with one fresh token — the bucket refills from here), failure
    /// re-opens it for another full backoff.
    pub fn probe_result(&mut self, ok: bool, now: u64) {
        if self.state != BreakerState::HalfOpen {
            return;
        }
        if ok {
            self.state = BreakerState::Closed;
            self.tokens = 1.0;
            self.last_refill = now;
        } else {
            self.state = BreakerState::Open;
            self.opened_at = now;
            self.openings += 1;
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True while restarts are parked (Open, or probing Half-Open).
    pub fn is_open(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// Times the breaker has transitioned to Open.
    pub fn openings(&self) -> u64 {
        self.openings
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Why the child last went down (recorded on the following respawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartCause {
    /// First spawn of the session.
    Initial,
    /// Silence past the hang deadline; the supervisor force-killed it.
    Hang,
    /// The child died on its own (EOF / failed write).
    Crash,
    /// The supervisor killed it deliberately (chaos kill-9 injection).
    Killed,
}

impl RestartCause {
    /// Stable snake_case name for notes and reports.
    pub fn name(self) -> &'static str {
        match self {
            RestartCause::Initial => "initial",
            RestartCause::Hang => "hang",
            RestartCause::Crash => "crash",
            RestartCause::Killed => "killed",
        }
    }
}

/// One completed (re)spawn, for monitors and reports.
#[derive(Debug, Clone)]
pub struct RestartEvent {
    /// Parent slot at which the child came back.
    pub at_seq: u64,
    /// Why the previous incarnation went down.
    pub cause: RestartCause,
    /// What the new incarnation recovered.
    pub hello: Hello,
}

/// Supervisor counters ([`Supervisor::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisorStats {
    /// Hangs classified (silence past the deadline → force-kill).
    pub hangs_detected: u64,
    /// Child deaths observed (EOF, failed send) — injected kills included.
    pub crashes_detected: u64,
    /// Respawns completed (the initial spawn not counted).
    pub restarts_total: u64,
    /// Times the restart breaker opened.
    pub breaker_openings: u64,
    /// Slots fed while no child was there to ack them (down, backing off,
    /// or lame-duck) — the supervisor's honest loss count.
    pub slots_lost: u64,
    /// Framing faults tolerated across all incarnations.
    pub wire_errors: u64,
}

/// What happened to one fed slot.
#[derive(Debug, Clone)]
pub enum SlotOutcome {
    /// The child processed (or replay-acked) it.
    Acked(Ack),
    /// Dropped: the child is down, restarting, or parked lame-duck. The
    /// child's gap-fill accounts it as a dropped slot after respawn.
    Lost(LostCause),
}

/// Why a fed slot went unacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LostCause {
    /// Child dead or inside its restart backoff.
    ChildDown,
    /// Restart breaker open: parked, deliberately not respawning.
    LameDuck,
}

/// Hang-aware supervision loop over a [`ChildHandle`]: feeds slots,
/// classifies silence past the hang deadline as a hang (force-kill +
/// warm-restart, exactly like a crash), meters respawns through a
/// [`RestartBreaker`], and keeps honest counts of everything it lost.
pub struct Supervisor {
    exe: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    cfg: SuperviseConfig,
    metrics: Arc<Metrics>,
    child: Option<ChildHandle>,
    breaker: RestartBreaker,
    stats: SupervisorStats,
    /// Respawn not before this fed slot (restart backoff).
    respawn_due: Option<u64>,
    death_cause: RestartCause,
    last_ack: Option<Ack>,
    restart_log: Vec<RestartEvent>,
    lame_duck_noted: bool,
}

impl Supervisor {
    /// A supervisor that will spawn `exe args…` (with `envs` added) on
    /// [`Supervisor::start`] and every warm restart. Metrics (hang and
    /// restart counters, breaker gauge, heartbeat lag) land in `metrics`.
    pub fn new(
        exe: &Path,
        args: &[String],
        envs: &[(String, String)],
        cfg: SuperviseConfig,
        metrics: Arc<Metrics>,
    ) -> Supervisor {
        Supervisor {
            exe: exe.to_path_buf(),
            args: args.to_vec(),
            envs: envs.to_vec(),
            breaker: RestartBreaker::new(
                cfg.restart_budget,
                cfg.restart_budget_window_slots,
                cfg.breaker_halfopen_after_slots,
            ),
            cfg,
            metrics,
            child: None,
            stats: SupervisorStats::default(),
            respawn_due: None,
            death_cause: RestartCause::Initial,
            last_ack: None,
            restart_log: Vec::new(),
            lame_duck_noted: false,
        }
    }

    fn hang_deadline(&self) -> Duration {
        Duration::from_millis(self.cfg.hang_deadline_ms.max(1))
    }

    fn hello_deadline(&self) -> Duration {
        // Recovery (checkpoint load + journal replay) runs before the
        // first heartbeat can flow, so give Hello a generous multiple.
        self.hang_deadline() * 10
    }

    /// First spawn. Does not charge the restart budget.
    pub fn start(&mut self) -> io::Result<Hello> {
        let (handle, hello) = ChildHandle::spawn_with_env(
            &self.exe,
            &self.args,
            &self.envs,
            Some(self.hello_deadline()),
        )?;
        self.child = Some(handle);
        self.restart_log.push(RestartEvent {
            at_seq: 0,
            cause: RestartCause::Initial,
            hello: hello.clone(),
        });
        Ok(hello)
    }

    /// Is a child process currently attached?
    pub fn child_alive(&self) -> bool {
        self.child.is_some()
    }

    /// Latest ack, if any slot has been acked.
    pub fn last_ack(&self) -> Option<&Ack> {
        self.last_ack.as_ref()
    }

    /// Every (re)spawn so far, oldest first.
    pub fn restart_log(&self) -> &[RestartEvent] {
        &self.restart_log
    }

    /// Counter snapshot (wire errors folded in from the live handle).
    pub fn stats(&self) -> SupervisorStats {
        let mut s = self.stats;
        if let Some(c) = &self.child {
            s.wire_errors += c.wire_errors();
        }
        s
    }

    /// Breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Tear the child down *now* with SIGKILL — the chaos engine's
    /// `kill -9` injection. The next fed slot starts the restart path.
    pub fn kill_now(&mut self, seq: u64) {
        if let Some(mut c) = self.child.take() {
            self.stats.wire_errors += c.wire_errors();
            let _ = c.kill();
            self.stats.crashes_detected += 1;
            self.death_cause = RestartCause::Killed;
            self.respawn_due = Some(seq.saturating_add(self.cfg.restart_backoff_slots));
        }
    }

    /// Feed one slot. Returns the ack, or an honest account of why the
    /// slot was lost. Never blocks past the hang deadline (plus heartbeat
    /// extensions while the child proves liveness).
    pub fn feed_slot(&mut self, seq: u64, capture: &Capture) -> SlotOutcome {
        if self.child.is_none() && !self.try_respawn(seq) {
            self.stats.slots_lost += 1;
            let cause = if self.breaker.is_open() {
                LostCause::LameDuck
            } else {
                LostCause::ChildDown
            };
            return SlotOutcome::Lost(cause);
        }
        let msg = WireMsg::Slot {
            seq,
            capture: capture.clone(),
        };
        if self.child.as_mut().unwrap().send(&msg).is_err() {
            self.on_child_death(seq, RestartCause::Crash, "send failed (child died)");
            self.stats.slots_lost += 1;
            return SlotOutcome::Lost(LostCause::ChildDown);
        }
        let hang_deadline = self.hang_deadline();
        let mut silent_since = Instant::now();
        loop {
            let outcome = self.child.as_mut().unwrap().recv_timeout(hang_deadline);
            match outcome {
                Ok(Some(ChildMsg::Heartbeat { .. })) => {
                    // Busy but alive: record how close it came, reset the
                    // silence clock, keep waiting for the ack.
                    self.metrics.gauge_set(
                        Gauge::HeartbeatLagUs,
                        silent_since.elapsed().as_micros() as u64,
                    );
                    silent_since = Instant::now();
                }
                Ok(Some(ChildMsg::Ack(ack))) => {
                    self.metrics.gauge_set(
                        Gauge::HeartbeatLagUs,
                        silent_since.elapsed().as_micros() as u64,
                    );
                    self.last_ack = Some(ack.clone());
                    return SlotOutcome::Acked(ack);
                }
                // Stray frames (late Report, duplicate Hello after a race)
                // are dropped, not fatal.
                Ok(Some(_)) => {}
                Ok(None) => {
                    // Silence past the hang deadline with the pipe still
                    // open: the child is wedged. Force-kill and treat it
                    // as a crash.
                    self.stats.hangs_detected += 1;
                    self.metrics.inc(Counter::HangsDetected);
                    self.metrics.note(
                        "hang",
                        format!(
                            "child silent past {} ms at slot {seq}; force-killed",
                            self.cfg.hang_deadline_ms
                        ),
                    );
                    if let Some(mut c) = self.child.take() {
                        self.stats.wire_errors += c.wire_errors();
                        let _ = c.kill();
                    }
                    self.death_cause = RestartCause::Hang;
                    self.respawn_due = Some(seq.saturating_add(self.cfg.restart_backoff_slots));
                    self.stats.slots_lost += 1;
                    return SlotOutcome::Lost(LostCause::ChildDown);
                }
                Err(_) => {
                    self.on_child_death(seq, RestartCause::Crash, "pipe EOF (child died)");
                    self.stats.slots_lost += 1;
                    return SlotOutcome::Lost(LostCause::ChildDown);
                }
            }
        }
    }

    /// Ask the child for a byte-accounting report (parity audits). `None`
    /// when the child is down or does not answer within the hang deadline
    /// (which then counts as a hang, exactly like a silent slot).
    pub fn request_report(&mut self, ranges: Vec<(u64, u64)>) -> Option<ReportReply> {
        let child = self.child.as_mut()?;
        if child.send(&WireMsg::Report { ranges }).is_err() {
            return None;
        }
        let deadline = self.hang_deadline();
        loop {
            match self.child.as_mut()?.recv_timeout(deadline) {
                Ok(Some(ChildMsg::Report(r))) => return Some(r),
                Ok(Some(_)) => continue,
                _ => return None,
            }
        }
    }

    /// Clean shutdown: `Finish`, await `Done`, then a deadline-bounded
    /// wait with SIGKILL escalation. Returns the final durable slot when
    /// the child finished cleanly.
    pub fn finish(&mut self) -> Option<u64> {
        let mut child = self.child.take()?;
        self.stats.wire_errors += child.wire_errors();
        if child.send(&WireMsg::Finish).is_err() {
            let _ = child.kill();
            return None;
        }
        let mut final_slot = None;
        loop {
            match child.recv_timeout(self.hang_deadline()) {
                Ok(Some(ChildMsg::Done { final_slot: s })) => {
                    final_slot = Some(s);
                    break;
                }
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
        let _ = child.wait_timeout(Duration::from_millis(self.cfg.wait_timeout_ms.max(1)));
        final_slot
    }

    fn on_child_death(&mut self, seq: u64, cause: RestartCause, why: &str) {
        if let Some(mut c) = self.child.take() {
            self.stats.wire_errors += c.wire_errors();
            let _ = c.kill(); // reap; the process is already gone
        }
        self.stats.crashes_detected += 1;
        self.metrics
            .note("child_death", format!("slot {seq}: {why}"));
        self.death_cause = cause;
        self.respawn_due = Some(seq.saturating_add(self.cfg.restart_backoff_slots));
    }

    /// Try to bring a child back at fed slot `seq`. False = still down
    /// (backing off, breaker open, or spawn failed).
    fn try_respawn(&mut self, seq: u64) -> bool {
        if let Some(due) = self.respawn_due {
            if seq < due {
                return false;
            }
        }
        let was_open = self.breaker.is_open();
        if !self.breaker.try_acquire(seq) {
            if !was_open && self.breaker.is_open() {
                // Freshly opened: gauge + operator note, once per opening.
                self.stats.breaker_openings += 1;
                self.metrics.gauge_set(Gauge::RestartBreakerOpen, 1);
                self.metrics.note(
                    "restart_breaker",
                    format!(
                        "open at slot {seq}: budget {} / {} slots exhausted; parking lame-duck",
                        self.cfg.restart_budget, self.cfg.restart_budget_window_slots
                    ),
                );
                self.lame_duck_noted = true;
            }
            return false;
        }
        let probing = self.breaker.state() == BreakerState::HalfOpen;
        match ChildHandle::spawn_with_env(
            &self.exe,
            &self.args,
            &self.envs,
            Some(self.hello_deadline()),
        ) {
            Ok((handle, hello)) => {
                self.breaker.probe_result(true, seq);
                if self.lame_duck_noted {
                    self.metrics.gauge_set(Gauge::RestartBreakerOpen, 0);
                    self.metrics.note(
                        "restart_breaker",
                        format!("half-open probe at slot {seq} succeeded; closed"),
                    );
                    self.lame_duck_noted = false;
                }
                self.child = Some(handle);
                self.stats.restarts_total += 1;
                self.metrics.inc(Counter::RestartsTotal);
                self.restart_log.push(RestartEvent {
                    at_seq: seq,
                    cause: self.death_cause,
                    hello,
                });
                self.respawn_due = None;
                true
            }
            Err(e) => {
                if probing {
                    self.breaker.probe_result(false, seq);
                    self.metrics.note(
                        "restart_breaker",
                        format!("half-open probe at slot {seq} failed: {e}"),
                    );
                } else {
                    self.metrics
                        .note("child_death", format!("respawn failed: {e}"));
                }
                self.respawn_due = Some(seq.saturating_add(self.cfg.restart_backoff_slots.max(1)));
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_decoder_parses_clean_lines() {
        let mut d = FrameDecoder::new();
        let msg = ChildMsg::Done { final_slot: 42 };
        let line = format!("{}\n", serde_json::to_string(&msg).unwrap());
        d.push(line.as_bytes());
        match d.next_frame() {
            Some(Frame::Msg(m)) => match *m {
                ChildMsg::Done { final_slot } => assert_eq!(final_slot, 42),
                other => panic!("wrong message: {other:?}"),
            },
            other => panic!("expected Msg, got {other:?}"),
        }
        assert!(d.next_frame().is_none());
        assert_eq!(d.errors(), 0);
        assert!(d.finish().is_none());
    }

    #[test]
    fn frame_decoder_resyncs_after_garbage() {
        let mut d = FrameDecoder::new();
        let good = format!(
            "{}\n",
            serde_json::to_string(&ChildMsg::Done { final_slot: 7 }).unwrap()
        );
        // Garbage, a corrupt JSON line, then a good frame — the good frame
        // must still come through.
        d.push(b"\x00\xffnot json at all\n{\"Ack\":{\"seq\":\n");
        d.push(good.as_bytes());
        let mut errs = 0;
        let mut done = false;
        while let Some(f) = d.next_frame() {
            match f {
                Frame::Err(e) => {
                    assert_eq!(e, WireError::Malformed);
                    errs += 1;
                }
                Frame::Msg(m) => {
                    assert!(matches!(*m, ChildMsg::Done { final_slot: 7 }));
                    done = true;
                }
            }
        }
        assert_eq!(errs, 2, "both garbage lines counted");
        assert!(done, "stream re-synced to the good frame");
        assert_eq!(d.errors(), 2);
    }

    #[test]
    fn frame_decoder_bounds_oversized_lines() {
        let mut d = FrameDecoder::with_max_frame(64);
        // A 10 KiB line with no newline yet must not balloon the buffer.
        d.push(&vec![b'x'; 10 * 1024]);
        assert!(d.next_frame().is_none());
        assert!(d.buf.len() <= 64, "oversized bytes discarded, not buffered");
        d.push(b"tail\n");
        match d.next_frame() {
            Some(Frame::Err(WireError::Oversized(n))) => assert!(n >= 10 * 1024),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // And the stream is usable again.
        let good = format!(
            "{}\n",
            serde_json::to_string(&ChildMsg::Done { final_slot: 1 }).unwrap()
        );
        d.push(good.as_bytes());
        assert!(matches!(d.next_frame(), Some(Frame::Msg(_))));
    }

    #[test]
    fn frame_decoder_truncated_tail_is_typed() {
        let mut d = FrameDecoder::new();
        d.push(b"{\"Done\":{\"final_slot\":9");
        assert!(d.next_frame().is_none());
        assert_eq!(d.finish(), Some(WireError::Truncated));
        assert_eq!(d.errors(), 1);
    }

    #[test]
    fn breaker_opens_on_exhaustion_and_halfopen_recovers() {
        let mut b = RestartBreaker::new(2, 1_000_000, 100);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(1));
        assert_eq!(b.state(), BreakerState::Closed);
        // Third restart inside the window: bucket empty, breaker opens.
        assert!(!b.try_acquire(2));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.openings(), 1);
        // Parked during backoff.
        assert!(!b.try_acquire(50));
        // Past the half-open backoff: one probe granted.
        assert!(b.try_acquire(103));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // No second restart while the probe is outstanding.
        assert!(!b.try_acquire(104));
        b.probe_result(true, 105);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire(106), "closed with a fresh token");
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let mut b = RestartBreaker::new(1, 1_000_000, 10);
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(1));
        assert!(b.try_acquire(12));
        b.probe_result(false, 12);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.openings(), 2);
        // Another full backoff before the next probe.
        assert!(!b.try_acquire(13));
        assert!(b.try_acquire(23));
    }

    #[test]
    fn breaker_refills_with_slots() {
        let mut b = RestartBreaker::new(2, 100, 50);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        // 100 slots later the full budget is back.
        assert!(b.try_acquire(100));
        assert!(b.try_acquire(100));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_capacity_disables_breaker() {
        let mut b = RestartBreaker::new(0, 100, 50);
        for i in 0..1_000 {
            assert!(b.try_acquire(i));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
