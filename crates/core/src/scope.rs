//! The top-level NR-Scope session: cell search → SIB acquisition →
//! per-TTI telemetry (paper Fig 2 and Fig 3).

use crate::clock::{ClockEvents, ClockLock, ClockObservable, ClockRecovery};
use crate::config::ScopeConfig;
use crate::decoder::{
    decode_grid_budgeted, decode_message_slot, decode_message_slot_budgeted, DecodeWork,
    DecodedDci, DecoderContext, Hypotheses,
};
use crate::governor::{LoadModel, LoadRung, OverloadGovernor, SlotVerdict};
use crate::metrics::{Counter, Gauge, Metrics, MetricsSnapshot, Stage};
use crate::observe::{Capture, ObservedSlot, PdschPayload};
use crate::persist::{JournalEntry, MicroState, SessionState, SlotOp};
use crate::spare::{slot_data_res, spare_capacity_excluding, SpareShare, UeUsage};
use crate::telemetry::TelemetryRecord;
use crate::throughput::ThroughputEstimator;
use crate::tracker::{Admission, UeTracker};
use crate::worker::{JobPriority, PoolStats, SlotJob};
use nr_phy::dci::{riv_decode, time_alloc, DciFormat, DciSizing};
use nr_phy::grid::ResourceGrid;
use nr_phy::mcs::McsTable;
use nr_phy::ofdm::Ofdm;
use nr_phy::pdcch::SearchBudget;
use nr_phy::sync::{detect_pss, detect_sss, SYNC_SEQ_LEN};
use nr_phy::tbs::{transport_block_size, TbsParams};
use nr_phy::types::{Pci, Rnti, RntiType};
use nr_rrc::{Mib, RrcSetup, Sib1};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the sniffer has learned about the cell so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CellKnowledge {
    /// Detected physical cell identity (IQ mode: from PSS/SSS).
    pub pci: Option<Pci>,
    /// Decoded MIB.
    pub mib: Option<Mib>,
    /// Decoded SIB1.
    pub sib1: Option<Sib1>,
    /// Slot (sniffer-local counter) at which the last MIB was seen —
    /// anchors the frame timing.
    pub frame_anchor_slot: Option<u64>,
    /// SFN carried by that MIB.
    pub anchor_sfn: u32,
}

/// Synchronisation health of the session (self-healing state machine).
///
/// `Synced` is the normal state. Consecutive unhealthy slots (nothing
/// decoded while UEs are expected, or slots dropped by the front end)
/// degrade it to `Degraded`, then `Lost` — at which point the cell
/// identity is discarded — and `Reacquiring`, where cell search re-runs
/// (PSS/SSS at IQ fidelity, an SI-RNTI PCI scan at message fidelity).
/// Any successful DCI decode snaps the session back to `Synced`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SyncState {
    /// Decoding normally.
    #[default]
    Synced,
    /// Suspiciously quiet: decode failures or drops are accumulating.
    Degraded,
    /// Sync declared lost; the PCI is no longer trusted.
    Lost,
    /// Re-running cell search to find the (possibly new) cell.
    Reacquiring,
}

/// Counters the micro-benchmarks read.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ScopeStats {
    /// Slots processed.
    pub slots: u64,
    /// DCIs decoded, by class.
    pub si_dcis: u64,
    /// RA-RNTI DCIs decoded.
    pub ra_dcis: u64,
    /// MSG 4 (TC-RNTI) DCIs decoded.
    pub tc_dcis: u64,
    /// Downlink C-RNTI DCIs decoded.
    pub dl_dcis: u64,
    /// Uplink C-RNTI DCIs decoded.
    pub ul_dcis: u64,
    /// Retransmissions flagged.
    pub retransmissions: u64,
    /// RRC Setups fully decoded (vs skipped via cache).
    pub rrc_decoded: u64,
    /// RRC Setup decodes skipped thanks to the cache (§3.1.2).
    pub rrc_skipped: u64,
    /// Slots the front end dropped (overflow or processing stall).
    pub dropped_slots: u64,
    /// Jobs shed by the worker pool under backpressure (absorbed from
    /// [`PoolStats`]).
    pub shed_jobs: u64,
    /// Worker panics survived by the pool supervisor (absorbed from
    /// [`PoolStats`]).
    pub worker_panics: u64,
    /// Slots whose sample layout matched no known carrier configuration.
    pub layout_mismatch_slots: u64,
    /// Transitions back to [`SyncState::Synced`] after degradation.
    pub resyncs: u64,
    /// SIB1 re-reads that carried changed content (cell reconfiguration).
    pub sib1_reloads: u64,
    /// UEs re-tracked after expiry or sync loss (not new discoveries).
    pub recovered_ues: u64,
    /// Slots whose pipeline latency exceeded the TTI deadline budget.
    pub deadline_misses: u64,
    /// Overload-ladder demotions (one rung down).
    pub rung_demotions: u64,
    /// Overload-ladder promotions (one rung back up).
    pub rung_promotions: u64,
    /// PDCCH candidates the search budget refused a UE-specific pass.
    pub pruned_candidates: u64,
    /// Slots processed at each rung, indexed by [`LoadRung`] (Full,
    /// PrunedSearch, BroadcastOnly, Shedding).
    pub slots_at_rung: [u64; 4],
    /// Workers abandoned by the pool watchdog (absorbed from
    /// [`PoolStats`]).
    pub worker_stalls: u64,
    /// Workers still running when the shutdown join timed out (absorbed
    /// from [`PoolStats`]).
    pub stuck_workers: u64,
    /// Data-priority jobs shed while broadcast jobs were protected
    /// (absorbed from [`PoolStats`]).
    pub priority_sheds: u64,
    /// Decode attempts abandoned on malformed state or content — counted
    /// here instead of panicking.
    pub decode_failures: u64,
    /// Broadcast payloads (SIB1 / RRC Setup) the bounded parsers rejected.
    #[serde(default)]
    pub parse_rejects: u64,
    /// CRC-passing DCIs rejected by stage-1 field-consistency validation.
    #[serde(default)]
    pub validation_rejects: u64,
    /// Candidate C-RNTIs moved to the quarantine ledger (stage-2
    /// admission control: never corroborated inside the window).
    #[serde(default)]
    pub ghosts_quarantined: u64,
    /// Integer sample slips commanded by the timing-recovery loop.
    #[serde(default)]
    pub timing_slips: u64,
    /// Times the timing-recovery loop fell out of `Locked`.
    #[serde(default)]
    pub clock_lock_losses: u64,
    /// Clock step discontinuities absorbed (oscillator steps and
    /// USRP-overrun gap feed-forwards).
    #[serde(default)]
    pub clock_steps: u64,
}

/// The passive telemetry engine.
pub struct NrScope {
    cfg: ScopeConfig,
    /// Cell knowledge accumulated from broadcasts.
    pub cell: CellKnowledge,
    tracker: UeTracker,
    throughput: ThroughputEstimator,
    /// Sniffer-local slot counter (one per processed observation).
    slot: u64,
    /// All telemetry records (the Fig 4 log file).
    records: Vec<TelemetryRecord>,
    /// Per-slot spare-capacity results (Fig 14).
    spare_log: Vec<(u64, Vec<SpareShare>)>,
    /// Counters.
    pub stats: ScopeStats,
    /// OFDM demodulator (IQ mode), constructed after MIB+SIB1.
    ofdm: Option<Ofdm>,
    /// PCI provided out-of-band for message fidelity (cell-search product).
    assumed_pci: Option<Pci>,
    /// Sync-health state machine.
    sync: SyncState,
    /// Consecutive unhealthy slots feeding the state machine.
    unhealthy_streak: u64,
    /// The PCI believed in before sync was lost — tried first when
    /// re-acquiring, since most losses are outages, not cell restarts.
    last_pci: Option<Pci>,
    /// Pipeline metrics registry, shared with the observer / worker pool.
    metrics: Arc<Metrics>,
    /// Overload governor: slot-deadline tracking and the degradation
    /// ladder (Full → PrunedSearch → BroadcastOnly → Shedding).
    governor: OverloadGovernor,
    /// Deterministic per-slot cost model. When set, the governor is fed
    /// modelled latency derived from offered decode work instead of wall
    /// clock — seed-reproducible overload dynamics for tests and benches.
    load_model: Option<LoadModel>,
    /// Whether state mutations are being captured for the crash journal.
    journaling: bool,
    /// State-mutating operations of the slot in flight, in order.
    slot_ops: Vec<SlotOp>,
    /// Whether the most recent capture was a front-end drop marker.
    last_dropped: bool,
    /// A changed SIB1 awaiting a second identical sighting before it
    /// replaces cell state (contradictory-reload defense): the candidate
    /// and how many consecutive times it has been seen.
    pending_sib1: Option<(Sib1, u32)>,
    /// UE lifecycle edges since the last [`NrScope::drain_ue_events`],
    /// bounded (oldest dropped) — the fleet layer's continuity feed.
    ue_events: std::collections::VecDeque<UeEvent>,
    /// Closed-loop timing recovery (the clock DPLL). Created lazily on
    /// the first clock observable — a front end with no oscillator model
    /// never instantiates it, and sync health behaves exactly as before.
    clock: Option<ClockRecovery>,
}

/// Cap on buffered [`UeEvent`]s when nobody drains them (a single-cell
/// session has no fleet layer): bounded memory beats a silent leak.
const UE_EVENTS_MAX: usize = 4096;

/// A UE lifecycle edge observed by the tracker, consumed by the fleet
/// layer's cross-cell continuity matcher. Events fire only on *new*
/// admissions (stage-2 probation passed or RACH-corroborated MSG 4) and
/// on genuine idle expiries — recoveries, restores, and journal replay do
/// not emit, so a crash-restarted shard never refabricates discoveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UeEvent {
    /// A C-RNTI newly admitted to tracking at `slot`.
    Discovered {
        /// The admitted C-RNTI.
        rnti: Rnti,
        /// Slot of admission.
        slot: u64,
    },
    /// A tracked C-RNTI aged out of tracking at `slot`.
    Expired {
        /// The expired C-RNTI.
        rnti: Rnti,
        /// Slot of the expiry sweep.
        slot: u64,
        /// Slot the UE was last seen active — the handover anchor: a UE
        /// leaving for another cell goes quiet here, not at `slot`.
        last_active_slot: u64,
    },
}

impl NrScope {
    /// New session. `assumed_pci` seeds message-fidelity runs (at IQ
    /// fidelity the PCI is detected from the SSB and this can be `None`).
    pub fn new(cfg: ScopeConfig, assumed_pci: Option<Pci>) -> NrScope {
        let metrics = Metrics::shared(cfg.metrics_enabled);
        NrScope::with_metrics(cfg, assumed_pci, metrics)
    }

    /// New session recording into an externally owned metrics registry
    /// (so the observer, radio, and worker pool can share it).
    pub fn with_metrics(
        cfg: ScopeConfig,
        assumed_pci: Option<Pci>,
        metrics: Arc<Metrics>,
    ) -> NrScope {
        NrScope {
            cfg,
            cell: CellKnowledge::default(),
            tracker: UeTracker::new(),
            throughput: ThroughputEstimator::with_retention(cfg.history_retention_slots),
            slot: 0,
            records: Vec::new(),
            spare_log: Vec::new(),
            stats: ScopeStats::default(),
            ofdm: None,
            assumed_pci,
            sync: SyncState::default(),
            unhealthy_streak: 0,
            last_pci: None,
            metrics,
            governor: OverloadGovernor::new(cfg.governor),
            load_model: None,
            journaling: false,
            slot_ops: Vec::new(),
            last_dropped: false,
            pending_sib1: None,
            ue_events: std::collections::VecDeque::new(),
            clock: None,
        }
    }

    /// Record a UE lifecycle edge, dropping the oldest when undrained.
    fn push_ue_event(&mut self, ev: UeEvent) {
        if self.ue_events.len() >= UE_EVENTS_MAX {
            self.ue_events.pop_front();
        }
        self.ue_events.push_back(ev);
    }

    /// Drain the UE lifecycle edges accumulated since the last call.
    pub fn drain_ue_events(&mut self) -> Vec<UeEvent> {
        self.ue_events.drain(..).collect()
    }

    /// Rebuild a session from a frozen [`SessionState`] (crash recovery).
    ///
    /// The operator's *current* config wins over the one active when the
    /// snapshot was taken (budgets and thresholds may have been retuned
    /// across the restart); earned runtime state — rung, EWMA, tracker,
    /// windows, counters — comes from the snapshot. Tracked UEs'
    /// `last_active_slot` is rebased to the restored watermark so downtime
    /// never counts as idle time.
    pub fn from_state(cfg: ScopeConfig, state: &SessionState) -> NrScope {
        let metrics = Metrics::shared(cfg.metrics_enabled);
        metrics.restore_counters(&state.metrics);
        let mut scope = NrScope::with_metrics(cfg, state.assumed_pci, metrics);
        scope.cell = state.cell.clone();
        scope.sync = state.sync;
        scope.unhealthy_streak = state.unhealthy_streak;
        scope.last_pci = state.last_pci;
        scope.stats = state.stats;
        scope.governor = state.governor.clone();
        scope.governor.set_config(cfg.governor);
        scope.tracker = UeTracker::from_state(&state.tracker, state.slot);
        scope.throughput = ThroughputEstimator::from_state(&state.throughput);
        scope.slot = state.slot;
        scope.clock = state
            .clock
            .map(|st| ClockRecovery::from_state(cfg.clock, st));
        scope
    }

    /// Freeze everything a warm restart needs into a serialisable image.
    /// `slot` doubles as the replay watermark: journal entries with
    /// `seq < slot` are already folded into this state.
    pub fn session_state(&self) -> SessionState {
        SessionState {
            schema_version: crate::SCHEMA_VERSION,
            slot: self.slot,
            cell: self.cell.clone(),
            sync: self.sync,
            unhealthy_streak: self.unhealthy_streak,
            last_pci: self.last_pci,
            assumed_pci: self.assumed_pci,
            stats: self.stats,
            governor: self.governor.clone(),
            tracker: self.tracker.state(),
            throughput: self.throughput.state(),
            metrics: self.metrics.snapshot(),
            clock: self.clock.as_ref().map(|c| c.state()),
        }
    }

    /// Begin capturing per-slot mutations for the crash journal. The
    /// caller must drain [`NrScope::take_journal_entry`] after every
    /// capture, or consecutive slots' operations merge into one entry.
    pub fn start_journaling(&mut self) {
        self.journaling = true;
    }

    /// Stop collecting per-slot mutations (durability demoted to
    /// `NonDurable`: nothing can be written, so accumulating ops would
    /// only grow memory for records that can never drain). Discards any
    /// undrained ops from the current slot.
    pub fn pause_journaling(&mut self) {
        self.journaling = false;
        self.slot_ops.clear();
    }

    /// Resume collecting per-slot mutations after a durability
    /// re-promotion (the caller re-anchors with a checkpoint — slots
    /// processed while paused were never journalled).
    pub fn resume_journaling(&mut self) {
        self.journaling = true;
    }

    /// The next slot to be processed — journal replay's idempotence
    /// watermark (every entry with `seq` below this is already applied).
    pub fn slot_watermark(&self) -> u64 {
        self.slot
    }

    /// Jump the slot counter forward to `to` (no-op if already past it).
    /// Used by the fleet layer when a *volatile* shard cold-restarts into
    /// a live feed: the fresh session adopts the feed position instead of
    /// grinding through thousands of synthetic gap-fill drops. Durable
    /// shards never need this — their watermark comes from recovery.
    pub fn fast_forward(&mut self, to: u64) {
        self.slot = self.slot.max(to);
    }

    /// Drain the just-processed slot's ordered mutations without building
    /// the (comparatively expensive) [`MicroState`] image — the
    /// group-commit fast path, which attaches one [`NrScope::micro_state`]
    /// per sealed batch instead of one per slot. `None` before the first
    /// slot or when journaling is off.
    pub fn take_slot_ops(&mut self) -> Option<(u64, bool, Vec<SlotOp>)> {
        if !self.journaling || self.slot == 0 {
            return None;
        }
        Some((
            self.slot - 1,
            self.last_dropped,
            std::mem::take(&mut self.slot_ops),
        ))
    }

    /// Snapshot the end-of-slot continuous state (sync, governor, stats,
    /// tracker bookkeeping) — what a journal batch's final record carries.
    pub fn micro_state(&self) -> MicroState {
        MicroState {
            cell: self.cell.clone(),
            sync: self.sync,
            unhealthy_streak: self.unhealthy_streak,
            last_pci: self.last_pci,
            stats: self.stats,
            governor: self.governor.clone(),
            tracker_aux: self.tracker.aux_state(),
            clock: self.clock.as_ref().map(|c| c.state()),
        }
    }

    /// Drain the just-processed slot's journal entry: its ordered
    /// mutations plus the end-of-slot continuous state. `None` before the
    /// first slot or when journaling is off.
    pub fn take_journal_entry(&mut self) -> Option<JournalEntry> {
        let (seq, dropped, ops) = self.take_slot_ops()?;
        Some(JournalEntry {
            seq,
            dropped,
            ops,
            micro: Some(self.micro_state()),
        })
    }

    /// Replay one journal entry on top of a restored snapshot. Entries at
    /// or past the watermark apply exactly once (returns `true`); entries
    /// below it are already part of the snapshot and are skipped — the
    /// idempotence that makes `snapshot + journal tail` safe when the two
    /// overlap.
    pub fn apply_journal_entry(&mut self, e: &JournalEntry) -> bool {
        if e.seq < self.slot {
            return false;
        }
        for op in &e.ops {
            match op {
                SlotOp::Track { rnti, rrc } => self.tracker.replay_track(*rnti, e.seq, *rrc),
                SlotOp::Record(r) => {
                    if let Some(ue) = self.tracker.get_mut(r.rnti) {
                        ue.last_active_slot = e.seq;
                        match r.format {
                            DciFormat::Dl1_1 => {
                                ue.harq_dl.observe(r.harq_id, r.ndi);
                            }
                            DciFormat::Ul0_1 => {
                                ue.harq_ul.observe(r.harq_id, r.ndi);
                            }
                        }
                    }
                    if r.counts_for_dl_throughput() {
                        self.throughput
                            .record(r.rnti, e.seq, r.tbs, self.cfg.rate_window_slots);
                    }
                    self.records.push(*r);
                }
                SlotOp::Expire { rnti } => {
                    self.tracker.replay_expire(*rnti);
                    self.throughput.forget(*rnti);
                }
            }
        }
        // End-of-slot continuous state is carried verbatim — replay never
        // re-derives sync/governor/stats decisions, so it cannot drift
        // from what the live run concluded. Interior records of a binary
        // batch are ops-only (`micro: None`); the batch's final record
        // re-anchors everything, and torn batches are discarded whole, so
        // replay always ends on a record that carries a MicroState.
        if let Some(micro) = &e.micro {
            self.cell = micro.cell.clone();
            self.sync = micro.sync;
            self.unhealthy_streak = micro.unhealthy_streak;
            self.last_pci = micro.last_pci;
            self.stats = micro.stats;
            self.governor = micro.governor.clone();
            self.governor.set_config(self.cfg.governor);
            self.tracker.set_aux(&micro.tracker_aux);
            self.clock = micro
                .clock
                .map(|st| ClockRecovery::from_state(self.cfg.clock, st));
        }
        // Mirror the live housekeeping cadence for departed-UE history.
        if e.seq.is_multiple_of(512) {
            self.throughput.prune(e.seq);
        }
        self.slot = e.seq + 1;
        true
    }

    /// The session's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Freeze the current pipeline metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Current synchronisation health.
    pub fn sync_state(&self) -> SyncState {
        self.sync
    }

    /// The air-interface SFN (mod-1024) the session currently derives
    /// from its MIB anchor — the sniffer-local `u64` slot counter never
    /// wraps, but its projection onto the air interface must.
    pub fn derived_sfn(&self) -> u32 {
        self.sfn()
    }

    /// Current timing-recovery lock rung, or `None` when no clock
    /// observables have ever arrived (ideal-clock front end).
    pub fn clock_lock(&self) -> Option<ClockLock> {
        self.clock.as_ref().map(|c| c.lock())
    }

    /// Signed clock-drift estimate (ppb) from the recovery loop's
    /// integral term; 0 with no loop or before acquisition.
    pub fn clock_drift_ppb(&self) -> i64 {
        self.clock
            .as_ref()
            .map(|c| c.drift_ppb(self.slot_s()))
            .unwrap_or(0)
    }

    /// The recovery loop's current total correction command for the
    /// front end: `(timing_us, cfo_hz)`. Zero before any observable.
    pub fn clock_command(&self) -> (f64, f64) {
        self.clock
            .as_ref()
            .map(|c| (c.correction_us(), c.correction_cfo_hz()))
            .unwrap_or((0.0, 0.0))
    }

    /// Whether decode silence is currently attributed to the clock
    /// domain rather than the cell (out of lock, inside the bounded
    /// reacquisition window).
    fn clock_masks_sync(&self) -> bool {
        self.clock.as_ref().is_some_and(|c| c.masks_sync())
    }

    /// Slot duration (s) from the MIB numerology, µ=1 until known.
    fn slot_s(&self) -> f64 {
        self.cell
            .mib
            .as_ref()
            .map(|m| m.scs_common.slot_duration_s())
            .unwrap_or(5e-4)
    }

    /// Feed one slot of clock evidence into the timing-recovery loop
    /// (creating it on first use) and record the slot's loop events into
    /// stats, metrics, and operator notes. Call once per captured slot,
    /// *before* [`NrScope::process_capture`], so the lock state composes
    /// with this slot's sync-health accounting.
    pub fn note_clock_observable(&mut self, obs: &ClockObservable) {
        let rung = self.governor.rung();
        let slot_s = self.slot_s();
        let clock = self
            .clock
            .get_or_insert_with(|| ClockRecovery::new(self.cfg.clock));
        let ev = clock.on_slot(obs);
        let st = clock.state();
        let drift_ppb = clock.drift_ppb(slot_s);
        let lock = clock.lock();
        self.note_clock_events(&ev, st.reacquire_slots, drift_ppb, lock, rung, slot_s);
    }

    /// Stats/metrics/notes fallout of one clock-loop slot.
    fn note_clock_events(
        &mut self,
        ev: &ClockEvents,
        reacquire_slots: u64,
        drift_ppb: i64,
        lock: ClockLock,
        rung: LoadRung,
        slot_s: f64,
    ) {
        if ev.slipped > 0 {
            self.stats.timing_slips += ev.slipped;
            self.metrics.add(Counter::TimingSlips, ev.slipped);
        }
        if ev.step {
            self.stats.clock_steps += 1;
            self.metrics.inc(Counter::ClockSteps);
            self.metrics.note(
                "clock_step",
                format!(
                    "step/gap absorbed at slot {} (total {})",
                    self.slot, self.stats.clock_steps
                ),
            );
        }
        if ev.lost_lock {
            self.stats.clock_lock_losses += 1;
            self.metrics.inc(Counter::ClockLockLosses);
            self.metrics.note(
                "clock_unlock",
                format!(
                    "lock lost at slot {} (drift {} ppb, losses {})",
                    self.slot, drift_ppb, self.stats.clock_lock_losses
                ),
            );
        }
        if let Some(excursion) = ev.locked {
            // Reacquisition time, overall and under the rung that was in
            // force — overload and clock trouble compound, and the
            // per-rung histograms show where the time went.
            let dur = Duration::from_secs_f64(excursion.max(reacquire_slots) as f64 * slot_s);
            self.metrics.observe(Stage::ClockReacquire, dur);
            self.metrics.observe(clock_reacquire_stage(rung), dur);
        }
        self.metrics
            .gauge_set(Gauge::ClockDriftPpb, drift_ppb.unsigned_abs());
        self.metrics.gauge_set(Gauge::ClockLockState, lock.index());
    }

    /// Convenience for front ends built on [`crate::Observer`]: capture
    /// one slot, feed the loop any clock observable, process the capture,
    /// and push the loop's updated correction command back to the
    /// observer. Equivalent to the manual capture → note → process →
    /// command sequence.
    pub fn process_observer_slot(
        &mut self,
        observer: &mut crate::observe::Observer,
        out: &gnb_sim::gnb::SlotOutput,
        t: f64,
    ) -> Vec<TelemetryRecord> {
        let cap = observer.capture(out, t);
        if let Some(obs) = observer.take_clock_observable() {
            self.note_clock_observable(&obs);
            let (timing_us, cfo_hz) = self.clock_command();
            observer.apply_clock_correction(timing_us, cfo_hz);
        }
        self.process_capture(&cap)
    }

    /// The degradation-ladder rung currently in force.
    pub fn load_rung(&self) -> LoadRung {
        self.governor.rung()
    }

    /// Read-only view of the overload governor.
    pub fn governor(&self) -> &OverloadGovernor {
        &self.governor
    }

    /// Pin the ladder to a rung (benchmarking per-rung throughput), or
    /// `None` to resume adaptive behaviour.
    pub fn force_rung(&mut self, rung: Option<LoadRung>) {
        self.governor.force(rung);
        self.metrics
            .gauge_set(Gauge::LoadRung, self.governor.rung() as u64);
    }

    /// Install (or clear) a deterministic latency model for the governor.
    pub fn set_load_model(&mut self, model: Option<LoadModel>) {
        self.load_model = model;
    }

    /// The PDCCH search budget the current rung imposes.
    pub fn search_budget(&self) -> SearchBudget {
        self.governor.search_budget()
    }

    /// Fold the worker pool's lifetime counters into the session stats.
    /// Call once, at teardown, with the pool's final numbers.
    pub fn absorb_pool_stats(&mut self, pool: &PoolStats) {
        self.stats.shed_jobs += pool.shed_jobs;
        self.stats.worker_panics += pool.worker_panics;
        self.stats.priority_sheds += pool.priority_sheds;
        self.stats.worker_stalls += pool.worker_stalls;
        self.stats.stuck_workers += pool.stuck_workers;
    }

    /// Package an observed slot as a self-contained [`SlotJob`] snapshot
    /// of the session's current decoder state, ready for a
    /// [`crate::WorkerPool`] (the Fig 4 scheduler's "copy of data and
    /// state"). `None` until the MIB is known.
    pub fn slot_job(&self, observed: ObservedSlot) -> Option<SlotJob> {
        let ctx = self.decoder_context()?;
        // Slots that may carry broadcast-critical content — an SSB/MIB, a
        // RACH response window, or a pending MSG 4 — are queued at
        // broadcast priority so the pool never sheds them before plain
        // C-RNTI telemetry work (the never-go-dark invariant).
        let broadcast_critical = matches!(
            &observed,
            ObservedSlot::Message {
                mib_bits: Some(_),
                ..
            }
        ) || !self.expected_ra_rntis().is_empty()
            || !self.tracker.pending_tc_rntis().is_empty();
        Some(SlotJob {
            slot: self.slot,
            slot_in_frame: self.slot_in_frame(),
            observed,
            ctx,
            hyp: self.hypotheses(),
            dci_threads: self.cfg.dci_threads,
            fault: None,
            priority: if broadcast_critical {
                JobPriority::Broadcast
            } else {
                JobPriority::Data
            },
            budget: self.governor.search_budget(),
        })
    }

    /// The telemetry log so far.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// The spare-capacity log (slot, per-UE shares).
    pub fn spare_log(&self) -> &[(u64, Vec<SpareShare>)] {
        &self.spare_log
    }

    /// Tracked C-RNTIs.
    pub fn tracked_rntis(&self) -> Vec<Rnti> {
        self.tracker.rntis()
    }

    /// Total UEs ever discovered.
    pub fn total_discovered(&self) -> u64 {
        self.tracker.total_discovered
    }

    /// Quarantined ghost RNTIs (stage-2 admission ledger), sorted.
    pub fn quarantined_rntis(&self) -> Vec<Rnti> {
        self.tracker.quarantined_rntis()
    }

    /// Candidate RNTIs still in probation (awaiting corroboration), sorted.
    pub fn probationary_rntis(&self) -> Vec<Rnti> {
        self.tracker.probation_rntis()
    }

    /// How often a quarantined ghost has reappeared on the air (zero if
    /// the RNTI is not quarantined).
    pub fn quarantine_reappearances(&self, rnti: Rnti) -> u64 {
        self.tracker.quarantine_reappearances(rnti).unwrap_or(0)
    }

    /// Estimated downlink rate for a UE over the configured window.
    pub fn rate_bps(&self, rnti: Rnti, slot_s: f64) -> f64 {
        self.throughput
            .rate_bps(rnti, self.cfg.rate_window_slots, slot_s)
    }

    /// Estimated bits for a UE in a slot window (offline evaluation).
    pub fn estimated_bits(&self, rnti: Rnti, slots: std::ops::Range<u64>) -> u64 {
        self.throughput.bits_in(rnti, slots)
    }

    /// Slot-in-frame as derived from the MIB anchor (0 until synchronised).
    /// `checked_sub`: a restored anchor can sit past the live counter for
    /// a few slots after a lossy restart — underflow here must not panic.
    fn slot_in_frame(&self) -> usize {
        let (Some(anchor), Some(mib)) = (self.cell.frame_anchor_slot, self.cell.mib.as_ref())
        else {
            return 0;
        };
        let spf = mib.scs_common.slots_per_frame() as u64;
        let since = self.slot.saturating_sub(anchor);
        (since % spf) as usize
    }

    /// Current SFN as derived from the anchor. The sniffer-local slot
    /// counter is a non-wrapping `u64`; only the projection onto the air
    /// interface wraps, via [`nr_phy::frame::sfn_add`]'s mod-1024 rule.
    fn sfn(&self) -> u32 {
        let (Some(anchor), Some(mib)) = (self.cell.frame_anchor_slot, self.cell.mib.as_ref())
        else {
            return 0;
        };
        let spf = mib.scs_common.slots_per_frame() as u64;
        let since = self.slot.saturating_sub(anchor);
        nr_phy::frame::sfn_add(self.cell.anchor_sfn, since / spf)
    }

    /// Expected RA-RNTIs for PRACH occasions inside the response window.
    fn expected_ra_rntis(&self) -> Vec<Rnti> {
        let Some(sib1) = &self.cell.sib1 else {
            return Vec::new();
        };
        let rach = &sib1.rach;
        let window = rach.ra_response_window as u64 + 4;
        let mut out = Vec::new();
        let lo = self.slot.saturating_sub(window);
        for s in lo..=self.slot {
            if rach.is_prach_occasion(s) {
                out.push(Rnti::ra_rnti(0, (s % 80) as u32, 0, 0));
            }
        }
        out
    }

    /// Process a front-end capture: a real slot, or a drop marker from the
    /// impairment path (USRP overflow, processing stall). Dropped slots
    /// still advance the slot clock and feed the sync-health machine.
    pub fn process_capture(&mut self, cap: &Capture) -> Vec<TelemetryRecord> {
        match cap {
            Capture::Slot(observed) => self.process(observed),
            Capture::Dropped(_) => {
                self.last_dropped = true;
                self.stats.dropped_slots += 1;
                self.metrics.inc(Counter::SlotsDropped);
                // A dropped slot is the strongest overload signal the
                // front end can emit: charge the governor double budget.
                let rung = self.governor.rung();
                let tti = self
                    .governor
                    .budget(self.cell.mib.as_ref().map(|m| m.scs_common));
                let verdict = self.governor.on_dropped_slot(self.slot, tti);
                self.note_governor(rung, tti * 2, verdict);
                // Drops are front-end reality, not governor-induced (or
                // clock-induced) silence, so they always count against
                // sync health: the clock mask covers *decode* silence
                // while pulling in — a front end that stops delivering
                // slots is an outage regardless of the oscillator, and
                // clock-overrun gaps are rare one-slot events the
                // feed-forward path absorbs without an excursion.
                self.note_unhealthy_slot();
                self.housekeeping(self.slot);
                self.slot += 1;
                Vec::new()
            }
        }
    }

    /// Process one observed slot, appending decoded telemetry. Returns the
    /// records produced in this slot.
    pub fn process(&mut self, observed: &ObservedSlot) -> Vec<TelemetryRecord> {
        // One wall reading serves both the SlotTotal histogram and the
        // governor's latency feed; with the registry disabled and a
        // LoadModel supplying latency, the slot path reads no clock at all.
        let wall_start =
            (self.metrics.is_enabled() || self.load_model.is_none()).then(Instant::now);
        self.last_dropped = false;
        let slot = self.slot;
        // The rung in force while this slot is decoded; transitions taken
        // at the end of the slot apply from the next one.
        let rung = self.governor.rung();
        let budget = self.governor.search_budget();
        self.stats.slots += 1;
        self.stats.slots_at_rung[rung as usize] += 1;
        self.metrics.inc(Counter::SlotsProcessed);
        let produced_from = self.records.len();
        let dcis_before = self.dci_total();
        let mut work = DecodeWork::default();
        match observed {
            ObservedSlot::Message {
                mib_bits,
                dcis,
                pdsch,
            } => {
                if let Some(bits) = mib_bits {
                    if let Ok(mib) = Mib::decode(bits) {
                        self.on_mib(mib, slot);
                    }
                }
                if self.cell.mib.is_some() {
                    if matches!(self.sync, SyncState::Lost | SyncState::Reacquiring) {
                        self.reacquire_message(dcis, pdsch, slot);
                    } else if let Some(ctx) = self.decoder_context() {
                        let hyp = self.hypotheses();
                        let (decoded, w) = decode_message_slot_budgeted(
                            &ctx,
                            dcis,
                            &hyp,
                            budget,
                            Some(&self.metrics),
                        );
                        work.absorb(&w);
                        self.consume(decoded, pdsch, slot);
                    } else {
                        // MIB known but no PCI from any source: nothing is
                        // descramblable. Count it instead of panicking.
                        self.stats.decode_failures += 1;
                        self.metrics.inc(Counter::DecodeFailures);
                    }
                }
            }
            ObservedSlot::Iq { samples, pdsch } => {
                let w = self.process_iq(samples, pdsch, slot, budget);
                work.absorb(&w);
            }
        }
        self.stats.pruned_candidates += work.pruned as u64;
        self.stats.validation_rejects += work.validation_rejects as u64;
        // Feed the governor: modelled latency when a LoadModel is
        // installed (deterministic tests), wall clock otherwise.
        let tti = self
            .governor
            .budget(self.cell.mib.as_ref().map(|m| m.scs_common));
        let latency = match &self.load_model {
            Some(m) => m.latency(&work),
            None => wall_start.map_or(Duration::ZERO, |t| t.elapsed()),
        };
        let verdict = self.governor.on_slot(slot, latency, tti);
        self.note_governor(rung, latency, verdict);
        // Sync health: a slot that decoded at least one DCI is healthy.
        // The MIB deliberately does not count — its payload carries no
        // cell identity, so it keeps decoding right through a PCI change.
        if self.dci_total() > dcis_before {
            self.unhealthy_streak = 0;
            if self.sync != SyncState::Synced {
                self.sync = SyncState::Synced;
                self.stats.resyncs += 1;
                self.metrics.inc(Counter::Resyncs);
            }
        } else if !matches!(rung, LoadRung::BroadcastOnly | LoadRung::Shedding)
            && !self.clock_masks_sync()
        {
            // At BroadcastOnly and below, UE-pass silence is
            // self-inflicted by the governor — feeding it to the sync
            // machine would declare a healthy cell lost and discard the
            // PCI. Broadcast decodes (SI/RA/TC) still reset the streak
            // above, so genuine cell loss is detected via SIB silence
            // once the ladder recovers. Likewise while the clock loop is
            // out of lock (bounded by `clock.max_reacquire_slots`):
            // drift-induced silence is the loop's to fix, not a cell
            // outage — but a clock that never relocks hands control back
            // to the sync machine once the bound lapses.
            self.note_unhealthy_slot();
        }
        self.housekeeping(slot);
        self.slot += 1;
        if let Some(start) = wall_start {
            self.metrics.observe(Stage::SlotTotal, start.elapsed());
        }
        self.records[produced_from..].to_vec()
    }

    /// Record a slot's governor verdict into stats and metrics.
    fn note_governor(&mut self, rung: LoadRung, latency: Duration, verdict: SlotVerdict) {
        if verdict.missed {
            self.stats.deadline_misses += 1;
            self.metrics.inc(Counter::DeadlineMisses);
        }
        if let Some((from, to)) = verdict.transition {
            if (to as usize) > (from as usize) {
                self.stats.rung_demotions += 1;
            } else {
                self.stats.rung_promotions += 1;
            }
        }
        self.metrics.observe(rung_stage(rung), latency);
        self.metrics
            .gauge_set(Gauge::LoadRung, self.governor.rung() as u64);
    }

    /// Total DCIs decoded so far, all classes.
    fn dci_total(&self) -> u64 {
        self.stats.si_dcis
            + self.stats.ra_dcis
            + self.stats.tc_dcis
            + self.stats.dl_dcis
            + self.stats.ul_dcis
    }

    /// One stage-2 admission step for an unadmitted candidate C-RNTI:
    /// note the corroborating decode, count any probation candidate the
    /// size bound displaced into quarantine, and return the verdict.
    fn admission_check(&mut self, rnti: Rnti, slot: u64) -> Admission {
        let (admission, displaced) = self.tracker.note_candidate(
            rnti,
            slot,
            self.cfg.admission.k,
            self.cfg.admission.window_slots,
            self.cfg.admission.quarantine_max,
        );
        if displaced.is_some() {
            self.stats.ghosts_quarantined += 1;
            self.metrics.inc(Counter::GhostRntisQuarantined);
        }
        admission
    }

    /// Housekeeping: expire idle UEs, stale RACH state, and (periodically)
    /// aged-out throughput history of departed UEs.
    fn housekeeping(&mut self, slot: u64) {
        let _t = self.metrics.start(Stage::Tracking);
        let ra_window = self
            .cell
            .sib1
            .as_ref()
            .map(|s| s.rach.ra_response_window as u64 + 8)
            .unwrap_or(32);
        // While the governor blinds the UE-specific pass, per-UE idleness
        // is unobservable — freezing expiry keeps C-RNTI knowledge intact
        // through an overload episode instead of discarding it for lack
        // of DCIs the sniffer chose not to decode.
        let ue_blind = matches!(
            self.governor.rung(),
            LoadRung::BroadcastOnly | LoadRung::Shedding
        );
        if !ue_blind {
            for (dead, last_active) in
                self.tracker
                    .expire(slot, self.cfg.ue_expiry_slots, ra_window)
            {
                if self.journaling {
                    self.slot_ops.push(SlotOp::Expire { rnti: dead });
                }
                self.throughput.forget(dead);
                self.push_ue_event(UeEvent::Expired {
                    rnti: dead,
                    slot,
                    last_active_slot: last_active,
                });
            }
            // Probation candidates whose corroboration window lapsed are
            // ghosts: quarantine them. Frozen while the governor blinds
            // the UE pass — a real UE cannot corroborate itself through
            // decodes the sniffer chose not to attempt.
            for _ghost in self.tracker.expire_probation(
                slot,
                self.cfg.admission.window_slots,
                self.cfg.admission.quarantine_max,
            ) {
                self.stats.ghosts_quarantined += 1;
                self.metrics.inc(Counter::GhostRntisQuarantined);
            }
        }
        // Amortised release of departed-UE history (see ThroughputEstimator
        // docs: `record` prunes live UEs; only departures need this).
        if slot.is_multiple_of(512) {
            self.throughput.prune(slot);
        }
        self.metrics
            .gauge_set(Gauge::TrackedUes, self.tracker.rntis().len() as u64);
        self.metrics
            .gauge_set(Gauge::QuarantineSize, self.tracker.quarantine_len() as u64);
    }

    /// Feed one unhealthy slot (nothing decoded, or dropped outright) into
    /// the state machine. Silence is only unhealthy when traffic is
    /// expected: UEs tracked, a RACH in flight, or already degraded.
    fn note_unhealthy_slot(&mut self) {
        let expecting = !self.tracker.is_empty()
            || !self.tracker.pending_tc_rntis().is_empty()
            || self.sync != SyncState::Synced
            || !self
                .tracker
                .recently_expired(self.slot, self.cfg.ue_expiry_slots)
                .is_empty();
        if !expecting {
            return;
        }
        self.unhealthy_streak += 1;
        match self.sync {
            SyncState::Synced if self.unhealthy_streak >= self.cfg.degraded_after_slots => {
                self.sync = SyncState::Degraded;
            }
            SyncState::Degraded if self.unhealthy_streak >= self.cfg.lost_after_slots => {
                // The cell may have restarted under a new identity: stop
                // trusting the PCI and go back to cell search. The MIB and
                // SIB1 are kept — the SIB1 re-read on resync will replace
                // them if the cell actually changed.
                self.sync = SyncState::Lost;
                self.last_pci = self.cell.pci.or(self.assumed_pci);
                self.cell.pci = None;
            }
            SyncState::Lost => {
                self.sync = SyncState::Reacquiring;
            }
            _ => {}
        }
    }

    /// Message-fidelity cell re-acquisition: scan candidate PCIs with an
    /// SI-RNTI-only hypothesis set (the system information is the only
    /// transmission decodable without UE state). The previously known PCI
    /// is tried first. CRC-XOR recovery stays off — under a wrong PCI it
    /// would manufacture false C-RNTIs from scrambling residue.
    fn reacquire_message(
        &mut self,
        dcis: &[crate::observe::ObservedDci],
        pdsch: &[(Rnti, PdschPayload)],
        slot: u64,
    ) {
        let mut candidates: Vec<u16> = Vec::new();
        if let Some(p) = self.last_pci {
            candidates.push(p.0);
        }
        candidates
            .extend((0..self.cfg.pci_scan_max).filter(|c| Some(*c) != self.last_pci.map(|p| p.0)));
        let hyp = Hypotheses {
            allow_recovery: false,
            ..Hypotheses::default()
        };
        for pci in candidates {
            let Some(ctx) = self.decoder_context_with(pci) else {
                // No MIB: nothing is decodable under any PCI hypothesis.
                self.stats.decode_failures += 1;
                self.metrics.inc(Counter::DecodeFailures);
                return;
            };
            let decoded = decode_message_slot(&ctx, dcis, &hyp);
            if decoded.iter().any(|d| d.rnti_type == RntiType::Si) {
                self.cell.pci = Some(Pci(pci));
                self.consume(decoded, pdsch, slot);
                return;
            }
        }
    }

    /// Decoder context, or `None` when the MIB or PCI is not yet known —
    /// callers count a decode failure rather than panicking.
    fn decoder_context(&self) -> Option<DecoderContext> {
        self.decoder_context_with(self.pci()?.0)
    }

    fn decoder_context_with(&self, pci: u16) -> Option<DecoderContext> {
        let mib = self.cell.mib.as_ref()?;
        Some(DecoderContext {
            coreset: mib.coreset0(),
            pci,
            common_sizing: DciSizing {
                bwp_prbs: mib.coreset0_n_prb as usize,
            },
            ue_sizing: self.cell.sib1.as_ref().map(|s| DciSizing {
                bwp_prbs: s.carrier_prbs as usize,
            }),
        })
    }

    fn pci(&self) -> Option<Pci> {
        self.cell.pci.or(self.assumed_pci)
    }

    fn hypotheses(&self) -> Hypotheses {
        let mut c_rntis = self.tracker.rntis();
        // Probationary RNTIs ride the UE-specific pass: a real UE on
        // probation decodes under its own scrambling and corroborates
        // itself; a ghost never does. Also keeps the recovery path from
        // re-minting the same candidate for free every slot.
        for r in self.tracker.probation_rntis() {
            if !c_rntis.contains(&r) {
                c_rntis.push(r);
            }
        }
        if self.sync != SyncState::Synced {
            // While unhealthy, also retry RNTIs that expired recently: UEs
            // that stayed connected through a sniffer-side outage re-track
            // from their first DCI instead of waiting for fresh RACH.
            for r in self
                .tracker
                .recently_expired(self.slot, self.cfg.ue_expiry_slots)
            {
                if !c_rntis.contains(&r) {
                    c_rntis.push(r);
                }
            }
        }
        Hypotheses {
            ra_rntis: self.expected_ra_rntis(),
            tc_rntis: self.tracker.pending_tc_rntis(),
            c_rntis,
            // CRC-XOR recovery needs a trusted PCI; with sync lost it would
            // invent C-RNTIs from mis-descrambled residue.
            allow_recovery: !matches!(self.sync, SyncState::Lost | SyncState::Reacquiring),
            skip_common: false,
        }
    }

    /// Accept a decoded SIB1. The first read is taken on faith (nothing
    /// is decodable without it); after that, *changed* content must be
    /// seen twice in a row before it replaces cell state, so a one-off
    /// corrupted or forged broadcast cannot flip the carrier
    /// configuration back and forth (contradictory-reload defense).
    fn on_sib1(&mut self, sib1: Sib1) {
        match self.cell.sib1.as_ref() {
            None => {
                self.cell.sib1 = Some(sib1);
                self.pending_sib1 = None;
            }
            Some(old) if *old == sib1 => {
                // Steady state re-read; drop any half-corroborated change.
                self.pending_sib1 = None;
            }
            Some(_) => match self.pending_sib1.take() {
                Some((cand, n)) if cand == sib1 => {
                    if n + 1 >= 2 {
                        self.stats.sib1_reloads += 1;
                        self.cell.sib1 = Some(sib1);
                    } else {
                        self.pending_sib1 = Some((cand, n + 1));
                    }
                }
                _ => {
                    self.pending_sib1 = Some((sib1, 1));
                }
            },
        }
    }

    fn on_mib(&mut self, mib: Mib, slot: u64) {
        self.cell.frame_anchor_slot = Some(slot);
        self.cell.anchor_sfn = mib.sfn as u32;
        self.cell.mib = Some(mib);
    }

    /// IQ path: synchronise (PSS/SSS), then demodulate and blind-decode.
    /// Returns the decode work offered (for the governor's load model).
    fn process_iq(
        &mut self,
        samples: &[nr_phy::complex::Cf32],
        pdsch: &[(Rnti, PdschPayload)],
        slot: u64,
        budget: SearchBudget,
    ) -> DecodeWork {
        // Need SIB1-less bootstrapping: at IQ fidelity we still receive the
        // MIB bits through the PBCH path once the grid is demodulated; the
        // demodulator needs the carrier layout, which the sniffer gets by
        // scanning configuration hypotheses during cell search. Here the
        // carrier width is taken from SIB1 when known, else from the
        // hypothesis that matches the sample count (how srsRAN's
        // cell_search sizes its FFT).
        let slot_in_frame = self.slot_in_frame();
        let Some(ofdm) = self.ofdm.as_ref() else {
            // Bootstrap: infer FFT sizing from the sample count (µ=1 and
            // µ=0 presets used by the paper's cells).
            for numer in [nr_phy::Numerology::Mu1, nr_phy::Numerology::Mu0] {
                for prbs in [51usize, 52, 79, 24] {
                    let o = Ofdm::new(numer, prbs);
                    if o.samples_per_slot(slot_in_frame) == samples.len() {
                        self.ofdm = Some(o);
                        break;
                    }
                }
                if self.ofdm.is_some() {
                    break;
                }
            }
            if self.ofdm.is_none() {
                self.stats.layout_mismatch_slots += 1;
                self.metrics.inc(Counter::LayoutMismatches);
                return DecodeWork::default();
            }
            return self.process_iq(samples, pdsch, slot, budget);
        };
        if samples.len() != ofdm.samples_per_slot(slot_in_frame) {
            // Truncated capture (overflow recovered mid-slot): the symbol
            // layout no longer lines up — skip rather than misparse.
            self.stats.layout_mismatch_slots += 1;
            self.metrics.inc(Counter::LayoutMismatches);
            return DecodeWork::default();
        }
        let grid = {
            let _t = self.metrics.start(Stage::Demod);
            ofdm.demodulate(samples, slot_in_frame)
        };
        // Cell search: PSS/SSS on the SSB region whenever not yet locked.
        if self.cell.pci.is_none() {
            if let Some(pci) = detect_cell(&grid) {
                self.cell.pci = Some(pci);
            }
        }
        let Some(pci) = self.pci() else {
            return DecodeWork::default();
        };
        // MIB (PBCH) decode when an SSB is present.
        if let Some(mib) = try_decode_pbch(&grid, pci) {
            self.on_mib(mib, slot);
        }
        if self.cell.mib.is_none() {
            return DecodeWork::default();
        }
        let Some(ctx) = self.decoder_context() else {
            self.stats.decode_failures += 1;
            self.metrics.inc(Counter::DecodeFailures);
            return DecodeWork::default();
        };
        let hyp = self.hypotheses();
        let metrics = Arc::clone(&self.metrics);
        let (decoded, work) = decode_grid_budgeted(
            &ctx,
            &grid,
            self.slot_in_frame(),
            &hyp,
            budget,
            Some(&metrics),
        );
        self.consume(decoded, pdsch, slot);
        work
    }

    /// Shared post-decode path: PDSCH association, RRC handling, HARQ
    /// tracking, TBS computation, logging.
    fn consume(&mut self, decoded: Vec<DecodedDci>, pdsch: &[(Rnti, PdschPayload)], slot: u64) {
        let _t = self.metrics.start(Stage::Classify);
        let sfn = self.sfn();
        let mut usages: Vec<UeUsage> = Vec::new();
        for d in decoded {
            match d.rnti_type {
                RntiType::Si => {
                    self.stats.si_dcis += 1;
                    if let Some(PdschPayload::Sib1(bits)) = payload_for(pdsch, d.rnti) {
                        match Sib1::decode(bits) {
                            Ok(sib1) => self.on_sib1(sib1),
                            Err(_) => {
                                // Broadcast bits are untrusted input: a
                                // malformed SIB1 is counted and dropped,
                                // never allowed to clobber cell state.
                                self.stats.parse_rejects += 1;
                                self.metrics.inc(Counter::ParseRejects);
                            }
                        }
                    }
                }
                RntiType::Ra => {
                    self.stats.ra_dcis += 1;
                    if let Some(PdschPayload::Rar(tc)) = payload_for(pdsch, d.rnti) {
                        self.tracker.rar_seen(*tc, slot);
                    }
                }
                RntiType::Tc => {
                    self.stats.tc_dcis += 1;
                    // MSG 4: decode the RRC Setup from the PDSCH, or skip
                    // using the cache per §3.1.2.
                    let rrc = if self.cfg.skip_rrc_decode {
                        if let Some(cached) = self.tracker.cached_rrc() {
                            self.stats.rrc_skipped += 1;
                            Some(*cached)
                        } else {
                            self.decode_rrc_payload(pdsch, d.rnti)
                        }
                    } else {
                        self.decode_rrc_payload(pdsch, d.rnti)
                    };
                    if let Some(rrc) = rrc {
                        if !self.tracker.contains(d.rnti) {
                            // Stage-2 admission: a TC-RNTI shadowed by a
                            // decoded RAR (or seen legitimately before)
                            // is corroborated by the RACH procedure
                            // itself. A recovery-minted RNTI — possibly a
                            // chance CRC collision — must earn K
                            // corroborating decodes first.
                            let corroborated = self.tracker.is_pending_tc(d.rnti)
                                || self.tracker.was_ever_seen(d.rnti)
                                || self.admission_check(d.rnti, slot) == Admission::Admit;
                            if corroborated {
                                if self.journaling {
                                    self.slot_ops.push(SlotOp::Track { rnti: d.rnti, rrc });
                                }
                                if self.tracker.promote(d.rnti, slot, rrc) {
                                    self.push_ue_event(UeEvent::Discovered { rnti: d.rnti, slot });
                                } else {
                                    // Same RNTI re-RACHed after we expired
                                    // it: a recovery, not a new UE.
                                    self.stats.recovered_ues += 1;
                                }
                            }
                        }
                    }
                }
                RntiType::C => {
                    if !self.tracker.contains(d.rnti) && self.tracker.restore(d.rnti, slot) {
                        // A recently-expired hypothesis decoded: the UE
                        // was connected all along — re-track it in place.
                        self.stats.recovered_ues += 1;
                        if self.journaling {
                            if let Some(ue) = self.tracker.get(d.rnti) {
                                let rrc = ue.rrc;
                                self.slot_ops.push(SlotOp::Track { rnti: d.rnti, rrc });
                            }
                        }
                    } else if !self.tracker.contains(d.rnti) && self.tracker.is_probationary(d.rnti)
                    {
                        // A probationary RNTI decoded under its own
                        // UE-specific scrambling — exactly the
                        // corroboration stage 2 demands. Ghost RNTIs
                        // never produce these (their scrambling doesn't
                        // exist), so K such decodes admit the UE.
                        if self.admission_check(d.rnti, slot) == Admission::Admit {
                            if let Some(rrc) = self.tracker.cached_rrc().copied() {
                                if self.journaling {
                                    self.slot_ops.push(SlotOp::Track { rnti: d.rnti, rrc });
                                }
                                if self.tracker.promote(d.rnti, slot, rrc) {
                                    self.push_ue_event(UeEvent::Discovered { rnti: d.rnti, slot });
                                } else {
                                    self.stats.recovered_ues += 1;
                                }
                            }
                        }
                    }
                    let record = self.telemetry_for(&d, slot, sfn);
                    if let Some(r) = record {
                        match r.format {
                            DciFormat::Dl1_1 => {
                                self.stats.dl_dcis += 1;
                                if r.is_retx {
                                    self.stats.retransmissions += 1;
                                }
                                if r.counts_for_dl_throughput() {
                                    self.throughput.record(
                                        r.rnti,
                                        slot,
                                        r.tbs,
                                        self.cfg.rate_window_slots,
                                    );
                                }
                                usages.push(UeUsage {
                                    rnti: r.rnti,
                                    used_res: r.reg_count() * 12,
                                    mcs: r.mcs,
                                    layers: r.layers,
                                });
                            }
                            DciFormat::Ul0_1 => {
                                self.stats.ul_dcis += 1;
                            }
                        }
                        if self.journaling {
                            self.slot_ops.push(SlotOp::Record(r));
                        }
                        self.records.push(r);
                    }
                }
                RntiType::P => {}
            }
        }
        // Spare capacity for this TTI (only meaningful once SIB1 is known).
        if let Some(sib1) = &self.cell.sib1 {
            if !usages.is_empty() {
                let total = slot_data_res(sib1.carrier_prbs as usize, 12);
                let table = self
                    .tracker
                    .cached_rrc()
                    .map(|r| r.mcs_table)
                    .unwrap_or(McsTable::Qam256);
                // Defense in depth: quarantined ghosts are never tracked
                // so they cannot normally reach `usages`, but the spare
                // estimate must stay clean even if one slips through.
                let quarantined = self.tracker.quarantined_rntis();
                self.spare_log.push((
                    slot,
                    spare_capacity_excluding(&usages, &quarantined, total, table),
                ));
            }
        }
    }

    fn decode_rrc_payload(
        &mut self,
        pdsch: &[(Rnti, PdschPayload)],
        rnti: Rnti,
    ) -> Option<RrcSetup> {
        if let Some(PdschPayload::RrcSetup(bits)) = payload_for(pdsch, rnti) {
            self.stats.rrc_decoded += 1;
            match RrcSetup::decode(bits) {
                Ok(rrc) => Some(rrc),
                Err(_) => {
                    self.stats.parse_rejects += 1;
                    self.metrics.inc(Counter::ParseRejects);
                    None
                }
            }
        } else {
            // PDSCH missed: fall back to the cache if allowed.
            self.tracker.cached_rrc().copied()
        }
    }

    /// Translate a decoded C-RNTI DCI into a telemetry record.
    ///
    /// UE state (activity, HARQ memory) is mutated only after every
    /// content check has passed: a record is returned exactly when its
    /// side effects happened. Journal replay re-derives those side effects
    /// from the record alone, so a half-applied rejected DCI (activity
    /// bumped, HARQ advanced, no record) would silently diverge the
    /// restored session from the live one.
    fn telemetry_for(&mut self, d: &DecodedDci, slot: u64, sfn: u32) -> Option<TelemetryRecord> {
        let sib1 = self.cell.sib1.as_ref()?;
        let carrier = sib1.carrier_prbs as usize;
        let rrc = self.tracker.get(d.rnti)?.rrc;
        let Some((prb_start, prb_len)) = riv_decode(d.dci.f_alloc, carrier) else {
            // CRC passed but the frequency allocation is out of range for
            // the carrier: corrupt content — count it, don't crash.
            self.stats.decode_failures += 1;
            self.metrics.inc(Counter::DecodeFailures);
            return None;
        };
        let Some(entry) = rrc.mcs_table.entry(d.dci.mcs) else {
            // Reserved MCS index in an otherwise valid DCI.
            self.stats.decode_failures += 1;
            self.metrics.inc(Counter::DecodeFailures);
            return None;
        };
        let (symbol_start, symbol_len) = time_alloc(d.dci.t_alloc);
        let layers = match d.dci.format {
            DciFormat::Dl1_1 => rrc.max_mimo_layers as usize,
            DciFormat::Ul0_1 => 1,
        };
        let ue = self.tracker.get_mut(d.rnti)?;
        ue.last_active_slot = slot;
        let is_retx = match d.dci.format {
            DciFormat::Dl1_1 => ue.harq_dl.observe(d.dci.harq_id, d.dci.ndi),
            DciFormat::Ul0_1 => ue.harq_ul.observe(d.dci.harq_id, d.dci.ndi),
        };
        let tbs = transport_block_size(&TbsParams {
            n_prb: prb_len,
            n_symbols: symbol_len,
            dmrs_per_prb: rrc.dmrs_per_prb as usize,
            overhead_per_prb: rrc.x_overhead as usize,
            mcs: entry,
            layers,
        });
        Some(TelemetryRecord::from_dci(
            slot,
            sfn,
            d.rnti,
            RntiType::C,
            &d.dci,
            d.level,
            d.cce_start,
            (prb_start, prb_len),
            (symbol_start, symbol_len),
            layers,
            tbs,
            is_retx,
        ))
    }
}

fn payload_for(pdsch: &[(Rnti, PdschPayload)], rnti: Rnti) -> Option<&PdschPayload> {
    pdsch.iter().find(|(r, _)| *r == rnti).map(|(_, p)| p)
}

/// Per-rung slot-latency histogram stage.
fn rung_stage(rung: LoadRung) -> Stage {
    match rung {
        LoadRung::Full => Stage::RungFull,
        LoadRung::PrunedSearch => Stage::RungPruned,
        LoadRung::BroadcastOnly => Stage::RungBroadcast,
        LoadRung::Shedding => Stage::RungShedding,
    }
}

/// Per-rung clock-reacquisition histogram: which degradation rung was in
/// force when the loop finished pulling back in.
fn clock_reacquire_stage(rung: LoadRung) -> Stage {
    match rung {
        LoadRung::Full => Stage::ClockReacquireFull,
        LoadRung::PrunedSearch => Stage::ClockReacquirePruned,
        LoadRung::BroadcastOnly => Stage::ClockReacquireBroadcast,
        LoadRung::Shedding => Stage::ClockReacquireShedding,
    }
}

/// PSS/SSS cell detection on a demodulated grid (SSB centred in the
/// carrier, as rendered by `gnb_sim::iq`).
fn detect_cell(grid: &ResourceGrid) -> Option<Pci> {
    let n_sc = grid.n_subcarriers();
    if n_sc < SYNC_SEQ_LEN {
        return None;
    }
    let base = (n_sc - 240.min(n_sc)) / 2 + (240.min(n_sc) - SYNC_SEQ_LEN) / 2;
    let pss_rx: Vec<_> = (0..SYNC_SEQ_LEN).map(|i| grid.get(0, base + i)).collect();
    let (nid2, corr) = detect_pss(&pss_rx);
    if corr < 0.6 {
        return None;
    }
    let sss_rx: Vec<_> = (0..SYNC_SEQ_LEN).map(|i| grid.get(2, base + i)).collect();
    let (nid1, corr2) = detect_sss(&sss_rx, nid2);
    if corr2 < 0.6 {
        return None;
    }
    Some(Pci::from_parts(nid1, nid2))
}

/// PBCH (MIB) decode from an SSB-bearing grid, mirroring
/// `gnb_sim::iq::map_ssb`.
fn try_decode_pbch(grid: &ResourceGrid, pci: Pci) -> Option<Mib> {
    let n_sc = grid.n_subcarriers();
    let ssb_width = 240.min(n_sc);
    let base = (n_sc - ssb_width) / 2;
    // Re-harvest the PBCH QPSK symbols from symbols 1 and 3.
    let mut rx = Vec::with_capacity(2 * ssb_width);
    for sym in [1usize, 3] {
        for k in 0..ssb_width {
            rx.push(grid.get(sym, base + k));
        }
    }
    let needed = crate::pbch_e_bits() / 2;
    if rx.len() < needed {
        return None;
    }
    rx.truncate(needed);
    // Energy gate: an SSB-less slot has nothing here.
    let power: f32 = rx.iter().map(|v| v.norm_sqr()).sum::<f32>() / rx.len() as f32;
    if power < 0.1 {
        return None;
    }
    let mut llrs =
        nr_phy::modulation::demodulate_llr(&rx, nr_phy::modulation::Modulation::Qpsk, 0.1);
    let scr = nr_phy::sequence::gold_bits(pci.0 as u32, llrs.len());
    for (l, s) in llrs.iter_mut().zip(scr) {
        if s == 1 {
            *l = -*l;
        }
    }
    let k = nr_rrc::Mib::BITS + 24;
    let code = nr_phy::polar::PolarCode::new(k, crate::pbch_e_bits());
    let cw = code.decode_sc(&llrs);
    let payload = nr_phy::crc::dci_check_crc(&cw, 0)?;
    Mib::decode(&payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use crate::observe::Observer;
    use gnb_sim::{CellConfig, Gnb};
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn run_session(n_ues: usize, slots: u64, snr_db: f64, fidelity: Fidelity) -> (Gnb, NrScope) {
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
        for i in 0..n_ues {
            gnb.ue_arrives(SimUe::new(
                i as u64 + 1,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 2e6,
                        packet_bytes: 1200,
                    },
                    i as u64 + 1,
                ),
                0.0,
                60.0,
                i as u64 + 1,
            ));
        }
        let mut obs = Observer::new(&cell, snr_db, fidelity == Fidelity::Iq, 5);
        let mut scope = NrScope::new(
            ScopeConfig {
                fidelity,
                ..ScopeConfig::default()
            },
            Some(cell.pci),
        );
        let slot_s = cell.slot_s();
        for s in 0..slots {
            let out = gnb.step();
            let observed = obs.observe(&out, s as f64 * slot_s);
            scope.process(&observed);
        }
        (gnb, scope)
    }

    #[test]
    fn acquires_cell_and_tracks_ues_message_fidelity() {
        let (gnb, scope) = run_session(2, 3000, 35.0, Fidelity::Message);
        assert!(scope.cell.mib.is_some(), "MIB acquired");
        assert!(scope.cell.sib1.is_some(), "SIB1 acquired");
        assert_eq!(
            scope.tracked_rntis(),
            gnb.connected_rntis(),
            "tracker matches the cell's UE list"
        );
        assert!(scope.stats.dl_dcis > 100);
        assert!(scope.stats.ul_dcis > 0);
    }

    #[test]
    fn throughput_estimate_matches_ground_truth_within_one_percent() {
        // Backlogged download traffic, like the paper's evaluation flows
        // ("watching videos or downloading files"): transport blocks are
        // full, so the TBS-sum matches tcpdump-style byte counts closely.
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
        gnb.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                1,
            ),
            0.0,
            60.0,
            1,
        ));
        let mut obs = Observer::new(&cell, 35.0, false, 5);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        for s in 0..6000u64 {
            let out = gnb.step();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            scope.process(&observed);
        }
        let rnti = gnb.connected_rntis()[0];
        // Compare over the steady-state portion (skip attach).
        let est = scope.estimated_bits(rnti, 1000..6000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(1000..6000) as f64 * 8.0;
        assert!(truth > 0.0);
        let err = (est - truth).abs() / truth;
        assert!(
            err < 0.01,
            "estimate {est} vs truth {truth}: {:.3}%",
            err * 100.0
        );
    }

    #[test]
    fn cbr_traffic_estimate_is_within_padding_tolerance() {
        // Thin CBR flows see MAC padding (TBS ≥ queued bytes), so the
        // TBS-based estimate runs slightly hot — a few percent, like the
        // tail of the paper's Fig 9 error distributions.
        let (gnb, scope) = run_session(1, 6000, 35.0, Fidelity::Message);
        let rnti = gnb.connected_rntis()[0];
        let est = scope.estimated_bits(rnti, 1000..6000) as f64;
        let truth = gnb.ue(rnti).unwrap().delivered_bytes_in(1000..6000) as f64 * 8.0;
        assert!(truth > 0.0);
        let err = (est - truth).abs() / truth;
        assert!(
            err < 0.05,
            "estimate {est} vs truth {truth}: {:.3}%",
            err * 100.0
        );
    }

    #[test]
    fn retransmissions_are_flagged_and_not_double_counted() {
        // Bad channel → retransmissions; throughput counts each block once.
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 17);
        gnb.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Urban,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                1,
            ),
            -4.0,
            60.0,
            1,
        ));
        let mut obs = Observer::new(&cell, 35.0, false, 5);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        for s in 0..6000u64 {
            let out = gnb.step();
            let observed = obs.observe(&out, s as f64 * 0.0005);
            scope.process(&observed);
        }
        assert!(scope.stats.retransmissions > 5, "retx detected");
        // NR-Scope's retx count tracks the gNB's ground truth closely.
        let truth_retx = gnb
            .truth()
            .records()
            .iter()
            .filter(|r| {
                r.alloc.is_retx && r.alloc.format == DciFormat::Dl1_1 && r.rnti_type == RntiType::C
            })
            .count() as f64;
        let seen = scope.stats.retransmissions as f64;
        assert!(
            (seen - truth_retx).abs() / truth_retx.max(1.0) < 0.25,
            "retx {seen} vs truth {truth_retx}"
        );
    }

    #[test]
    fn rrc_skip_optimisation_decodes_once() {
        let (_, scope) = run_session(3, 4000, 35.0, Fidelity::Message);
        assert_eq!(scope.stats.rrc_decoded, 1, "first UE decodes the PDSCH");
        assert!(scope.stats.rrc_skipped >= 2, "later UEs use the cache");
    }

    #[test]
    fn iq_fidelity_end_to_end() {
        let (gnb, scope) = run_session(1, 400, 30.0, Fidelity::Iq);
        assert!(scope.cell.pci.is_some(), "PCI detected from PSS/SSS");
        assert!(scope.cell.mib.is_some(), "MIB decoded from PBCH");
        assert!(scope.cell.sib1.is_some(), "SIB1 decoded");
        assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
        assert!(scope.stats.dl_dcis > 10, "DCIs decoded from IQ");
    }

    #[test]
    fn outage_degrades_sync_then_recovers_expired_ues() {
        // 2 UEs attach, then the front end drops 160 consecutive slots
        // (USRP overflow). With a short idle-release timer both UEs expire
        // mid-outage; afterwards the degraded-mode hypothesis retry must
        // re-track them from their first DCI, with no double-counting.
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
        for i in 0..2u64 {
            gnb.ue_arrives(SimUe::new(
                i + 1,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 2e6,
                        packet_bytes: 1200,
                    },
                    i + 1,
                ),
                0.0,
                60.0,
                i + 1,
            ));
        }
        let mut obs = Observer::new(&cell, 35.0, false, 5);
        obs.set_impairments(crate::observe::ImpairmentSchedule::new(42).with_outage(2000..2160));
        let mut scope = NrScope::new(
            ScopeConfig {
                ue_expiry_slots: 100,
                ..ScopeConfig::default()
            },
            Some(cell.pci),
        );
        let slot_s = cell.slot_s();
        let mut saw_degraded = false;
        for s in 0..5000u64 {
            let out = gnb.step();
            let cap = obs.capture(&out, s as f64 * slot_s);
            scope.process_capture(&cap);
            if s == 2150 {
                saw_degraded = scope.sync_state() != SyncState::Synced;
            }
        }
        assert!(saw_degraded, "outage degraded the sync state");
        assert_eq!(scope.sync_state(), SyncState::Synced, "recovered");
        assert_eq!(scope.stats.dropped_slots, 160);
        assert!(scope.stats.resyncs >= 1, "resync counted");
        assert!(scope.stats.recovered_ues >= 2, "expired UEs re-tracked");
        assert_eq!(scope.total_discovered(), 2, "no double-counted discovery");
        assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
    }

    #[test]
    fn cell_restart_under_new_pci_is_reacquired() {
        // Mid-run the cell restarts with a different PCI: every scrambled
        // transmission goes dark for the sniffer. The health machine must
        // walk Synced → Degraded → Lost, re-run cell search (SI-RNTI PCI
        // scan at message fidelity), re-read the changed SIB1, and end up
        // tracking the re-attached UEs again.
        let cell = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cell.clone(), Box::new(RoundRobin::new()), 11);
        for i in 0..2u64 {
            gnb.ue_arrives(SimUe::new(
                i + 1,
                ChannelProfile::Awgn,
                MobilityScenario::Static,
                TrafficSource::new(
                    TrafficKind::Cbr {
                        rate_bps: 2e6,
                        packet_bytes: 1200,
                    },
                    i + 1,
                ),
                0.0,
                60.0,
                i + 1,
            ));
        }
        let mut obs = Observer::new(&cell, 35.0, false, 5);
        let mut scope = NrScope::new(ScopeConfig::default(), Some(cell.pci));
        let slot_s = cell.slot_s();
        for s in 0..2000u64 {
            let out = gnb.step();
            scope.process(&obs.observe(&out, s as f64 * slot_s));
        }
        assert_eq!(scope.tracked_rntis(), gnb.connected_rntis());
        gnb.restart(Pci(7));
        for s in 2000..6500u64 {
            let out = gnb.step();
            scope.process(&obs.observe(&out, s as f64 * slot_s));
        }
        assert_eq!(scope.sync_state(), SyncState::Synced, "re-synced");
        assert_eq!(scope.cell.pci, Some(Pci(7)), "new PCI found by the scan");
        assert!(scope.stats.resyncs >= 1);
        assert!(scope.stats.sib1_reloads >= 1, "changed SIB1 re-read");
        assert_eq!(
            scope.tracked_rntis(),
            gnb.connected_rntis(),
            "re-attached UEs tracked under the new cell identity"
        );
        assert_eq!(scope.total_discovered(), 2, "same UEs, not new ones");
    }

    #[test]
    fn spare_log_produced_for_loaded_slots() {
        let (_, scope) = run_session(2, 3000, 35.0, Fidelity::Message);
        assert!(!scope.spare_log().is_empty());
        let (_, shares) = &scope.spare_log()[scope.spare_log().len() / 2];
        assert!(!shares.is_empty());
    }
}
