//! # nrscope — the NR-Scope 5G Standalone telemetry tool
//!
//! The paper's primary contribution: a passive sniffer that, given the
//! downlink of a 5G SA cell (either IQ samples from the virtual USRP or
//! message-level slot captures), performs
//!
//! 1. **Cell search and common parameter acquisition** (§3.1.1): SSB
//!    detection, MIB decode, SIB1 acquisition — no operator cooperation.
//! 2. **UE association tracking** (§3.1.2): watching the RACH — RA-RNTI
//!    DCIs, RAR TC-RNTI extraction, MSG 4 CRC verification, TC→C-RNTI
//!    promotion — plus the CRC-XOR RNTI recovery trick as fallback.
//! 3. **Per-TTI telemetry** (§3.2): blind PDCCH decoding for every known
//!    UE, DCI→grant translation, Appendix-A TBS computation, HARQ/NDI
//!    retransmission detection, sliding-window throughput, and fair-share
//!    spare-capacity estimation.
//!
//! The [`worker`] module implements the Fig 4 processing pipeline
//! (scheduler + worker pool + result queue) with real threads.

pub mod binfmt;
pub mod chaos;
pub mod clock;
pub mod config;
pub mod decoder;
pub mod fleet;
pub mod governor;
pub mod log;
pub mod metrics;
pub mod observe;
pub mod persist;
pub mod scope;
pub mod spare;
pub mod supervise;
pub mod telemetry;
pub mod throughput;
pub mod tracker;
pub mod worker;

/// Version stamped into every serialised artefact (telemetry records,
/// metrics snapshots, scope configs, checkpoints, journal entries).
/// Readers reject artefacts stamped with a *newer* version — their field
/// semantics are unknowable — and accept older ones, relying on serde's
/// missing-field errors to catch true incompatibilities.
pub const SCHEMA_VERSION: u32 = 1;

pub use chaos::{
    ChaosArms, ChaosChildPlan, ChaosObs, ChaosSchedule, HangPoint, HangSchedule, HangTarget,
    InvariantMonitor, MonitorStatus, OverloadWindow, StorageWindow, Violation, CHAOS_PLAN_FILE,
};
pub use clock::{
    ClockEvents, ClockLock, ClockObservable, ClockRecovery, ClockRecoveryConfig, ClockRecoveryState,
};
pub use config::{AdmissionConfig, Fidelity, FleetConfig, ScopeConfig, StoragePolicy};
pub use fleet::{
    CellRollup, ContinuityMatch, FaultPlan, FeedOutcome, Fleet, FleetSnapshot, ShardHealth,
    ShardSpec, ShardStatus,
};
pub use governor::{GovernorConfig, LoadModel, LoadRung, OverloadGovernor};
pub use metrics::{Counter, Gauge, Metrics, MetricsSnapshot, Stage, StageSnapshot};
pub use observe::{Capture, DropReason, ImpairmentSchedule, ObservedDci, ObservedSlot, Observer};
pub use persist::{
    DurabilityRung, FaultKind, FaultyBackend, JournalWriter, PersistConfig, PersistentSession,
    RealBackend, RecoveryReport, SessionStore, StorageBackend, StorageFaultSchedule, StorageFile,
};
pub use scope::{NrScope, ScopeStats, SyncState, UeEvent};
pub use telemetry::TelemetryRecord;
pub use worker::{
    BackpressurePolicy, InjectedFault, JobPriority, PoolConfig, PoolStats, WorkerPool,
};

/// Rate-matched PBCH bit budget. Must equal the renderer's
/// (`gnb_sim::iq::PBCH_E_BITS`); asserted in integration tests.
pub fn pbch_e_bits() -> usize {
    gnb_sim::iq::PBCH_E_BITS
}
