//! Telemetry records — NR-Scope's output stream (one line per decoded DCI,
//! the format the paper's Fig 4 "Log File" holds and application servers
//! consume).

use nr_phy::dci::{Dci, DciFormat};
use nr_phy::pdcch::AggregationLevel;
use nr_phy::types::{Rnti, RntiType};
use serde::{Deserialize, Serialize};

/// One decoded DCI, translated to a grant, with telemetry annotations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Serialisation schema version ([`crate::SCHEMA_VERSION`]); readers
    /// reject records stamped with a newer version (`log::read_jsonl`).
    pub schema_version: u32,
    /// Absolute TTI index at the sniffer (slot counter since start).
    pub slot: u64,
    /// System frame number (once synchronised from the MIB).
    pub sfn: u32,
    /// The UE (or broadcast function) addressed.
    pub rnti: Rnti,
    /// How the RNTI was classified.
    pub rnti_type: RntiType,
    /// DCI format.
    pub format: DciFormat,
    /// Aggregation level the DCI was found at.
    pub level: AggregationLevel,
    /// First CCE of the decoded candidate.
    pub cce_start: usize,
    /// First allocated PRB.
    pub prb_start: usize,
    /// Allocated PRB count.
    pub prb_len: usize,
    /// First allocated symbol.
    pub symbol_start: usize,
    /// Allocated symbol count.
    pub symbol_len: usize,
    /// MCS index.
    pub mcs: u8,
    /// New-data indicator.
    pub ndi: u8,
    /// Redundancy version.
    pub rv: u8,
    /// HARQ process id.
    pub harq_id: u8,
    /// MIMO layers assumed (from the cached RRC Setup).
    pub layers: usize,
    /// Transport block size computed per Appendix A.
    pub tbs: u32,
    /// Retransmission flag from (harq_id, ndi) tracking (§3.2.2).
    pub is_retx: bool,
}

impl TelemetryRecord {
    /// REG count of the grant (Fig 8's unit).
    pub fn reg_count(&self) -> usize {
        self.prb_len * self.symbol_len
    }

    /// Whether this record contributes to a UE's downlink throughput: a
    /// C-RNTI DL grant carrying new data.
    pub fn counts_for_dl_throughput(&self) -> bool {
        self.rnti_type == RntiType::C && self.format == DciFormat::Dl1_1 && !self.is_retx
    }

    /// Render a srsRAN-style log line (the Appendix B "DCI:" shape).
    pub fn log_line(&self) -> String {
        format!(
            "c-rnti={}, dci={}, L={}, cce={}, f_alloc={}:{}, t_alloc={}:{}, mcs={}, ndi={}, rv={}, harq_id={}, tbs={}{}",
            self.rnti,
            self.format.name(),
            self.level.cces(),
            self.cce_start,
            self.prb_start,
            self.prb_len,
            self.symbol_start,
            self.symbol_len,
            self.mcs,
            self.ndi,
            self.rv,
            self.harq_id,
            self.tbs,
            if self.is_retx { ", retx" } else { "" },
        )
    }

    /// Build a record from an unpacked DCI plus grant translation context.
    #[allow(clippy::too_many_arguments)]
    pub fn from_dci(
        slot: u64,
        sfn: u32,
        rnti: Rnti,
        rnti_type: RntiType,
        dci: &Dci,
        level: AggregationLevel,
        cce_start: usize,
        prb_span: (usize, usize),
        symbol_span: (usize, usize),
        layers: usize,
        tbs: u32,
        is_retx: bool,
    ) -> TelemetryRecord {
        TelemetryRecord {
            schema_version: crate::SCHEMA_VERSION,
            slot,
            sfn,
            rnti,
            rnti_type,
            format: dci.format,
            level,
            cce_start,
            prb_start: prb_span.0,
            prb_len: prb_span.1,
            symbol_start: symbol_span.0,
            symbol_len: symbol_span.1,
            mcs: dci.mcs,
            ndi: dci.ndi,
            rv: dci.rv,
            harq_id: dci.harq_id,
            layers,
            tbs,
            is_retx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryRecord {
        TelemetryRecord {
            schema_version: crate::SCHEMA_VERSION,
            slot: 1234,
            sfn: 61,
            rnti: Rnti(0x4296),
            rnti_type: RntiType::C,
            format: DciFormat::Dl1_1,
            level: AggregationLevel::L2,
            cce_start: 4,
            prb_start: 0,
            prb_len: 2,
            symbol_start: 2,
            symbol_len: 12,
            mcs: 27,
            ndi: 0,
            rv: 0,
            harq_id: 11,
            layers: 2,
            tbs: 6400,
            is_retx: false,
        }
    }

    #[test]
    fn log_line_matches_appendix_b_shape() {
        let line = sample().log_line();
        assert!(line.contains("c-rnti=0x4296"));
        assert!(line.contains("dci=1_1"));
        assert!(line.contains("mcs=27"));
        assert!(line.contains("harq_id=11"));
        assert!(!line.contains("retx"));
    }

    #[test]
    fn throughput_eligibility() {
        let mut r = sample();
        assert!(r.counts_for_dl_throughput());
        r.is_retx = true;
        assert!(!r.counts_for_dl_throughput());
        r.is_retx = false;
        r.format = DciFormat::Ul0_1;
        assert!(!r.counts_for_dl_throughput());
    }

    #[test]
    fn serialises_to_json() {
        let j = serde_json::to_string(&sample()).unwrap();
        assert!(j.contains("\"tbs\":6400"));
        assert!(j.contains("\"schema_version\":1"));
        let back: TelemetryRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(back, sample());
    }
}
