//! The observation boundary between the cell and the sniffer.
//!
//! At **message fidelity** the observer converts a gNB [`SlotOutput`] into
//! scrambled DCI codewords plus broadcast payload bits, applying a
//! calibrated corruption model driven by the sniffer's receive SNR: the
//! same quantities the IQ path produces, three orders of magnitude faster.
//!
//! At **IQ fidelity** the observer renders the slot to samples, passes them
//! through the virtual USRP (noise + AGC) and hands the sniffer raw IQ.
//!
//! The observer sits on the "air" side: it may read the gNB's ground truth
//! to *construct the waveform/codewords*, but everything it passes on is
//! exactly what a receiver could capture.

use gnb_sim::gnb::{PdschContent, SlotOutput};
use gnb_sim::iq::IqRenderer;
use gnb_sim::CellConfig;
use nr_phy::complex::Cf32;
use nr_phy::crc::dci_attach_crc;
use nr_phy::mcs::McsEntry;
use nr_phy::modulation::Modulation;
use nr_phy::pdcch::AggregationLevel;
use nr_phy::sequence::{pdcch_scrambling_cinit, scramble_in_place};
use nr_phy::types::{Rnti, RntiType};
pub use nr_radio::ImpairmentSchedule;
use nr_radio::{ClockModel, Resampler, VirtualUsrp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::ClockObservable;
use crate::metrics::{Counter, Metrics, Stage};
use std::sync::Arc;

/// One candidate-shaped PDCCH capture at message fidelity: the scrambled
/// codeword bits as they sit on the candidate's REs (hard decisions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservedDci {
    /// Scrambled codeword bits (payload ‖ RNTI-scrambled CRC, then Gold
    /// scrambled). Corruption may have flipped bits.
    pub scrambled_bits: Vec<u8>,
    /// First CCE of the candidate.
    pub cce_start: usize,
    /// Aggregation level.
    pub level: AggregationLevel,
}

/// What the sniffer receives for one slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ObservedSlot {
    /// Message fidelity: MIB bits (if SSB present), candidate codewords,
    /// and broadcast PDSCH payloads (SIB1 / RAR / RRC Setup) keyed by the
    /// scheduling RNTI.
    Message {
        /// PBCH payload bits when an SSB fell in this slot.
        mib_bits: Option<Vec<u8>>,
        /// Captured PDCCH candidates.
        dcis: Vec<ObservedDci>,
        /// Broadcast PDSCH payloads (content the sniffer can decode).
        pdsch: Vec<(Rnti, PdschPayload)>,
    },
    /// IQ fidelity: one slot of post-AGC samples.
    Iq {
        /// Received samples.
        samples: Vec<Cf32>,
        /// Broadcast PDSCH payloads. (PDSCH decoding itself is message-
        /// level even in IQ mode — see DESIGN.md: NR-Scope only ever
        /// decodes PDSCH for SIB1/RRC Setup, and we model that path's
        /// 1–2 ms cost, not its waveform.)
        pdsch: Vec<(Rnti, PdschPayload)>,
    },
}

/// Decodable broadcast payload bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PdschPayload {
    /// SIB1 message bits.
    Sib1(Vec<u8>),
    /// Random access response carrying the TC-RNTI.
    Rar(Rnti),
    /// RRC Setup message bits.
    RrcSetup(Vec<u8>),
}

/// Why the observer produced no slot (what a real capture loop logs when
/// the ring buffer or the host falls behind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// USRP overflow: the slot buffer was lost in hardware.
    Overflow,
    /// Host stall: the receive thread missed its deadline.
    Stall,
}

/// One observer tick under fault injection: either a captured slot or an
/// accounted-for loss. [`Observer::capture`] produces these; the plain
/// [`Observer::observe`] path never drops.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Capture {
    /// The slot was captured (possibly degraded or truncated).
    Slot(ObservedSlot),
    /// The slot was lost.
    Dropped(DropReason),
}

/// The observer: owns the sniffer-side channel model.
pub struct Observer {
    /// Sniffer receive SNR (dB) — placement-dependent (paper Fig 13).
    snr_db: f64,
    usrp: VirtualUsrp,
    renderer: Option<IqRenderer>,
    rng: StdRng,
    /// Scripted impairments (chaos testing); `None` = clean capture.
    schedule: Option<ImpairmentSchedule>,
    /// Observer-local slot counter driving the schedule.
    capture_slot: u64,
    /// Remaining slots of an in-progress host stall.
    stall_remaining: u32,
    /// Pipeline metrics (capture-stage latency, radio counters).
    metrics: Option<Arc<Metrics>>,
    /// Oscillator truth (drift/CFO injection); `None` = ideal clock.
    clock: Option<ClockModel>,
    /// Receiver-commanded total timing correction (µs). The recovery
    /// loop pushes its running total here; only the *residual* (truth
    /// minus correction) degrades capture.
    corr_timing_us: f64,
    /// Receiver-commanded total CFO correction (Hz).
    corr_cfo_hz: f64,
    /// Clock observable produced by the most recent capture.
    last_clock_obs: Option<ClockObservable>,
    /// IQ-path steering resampler (unity ratio, fractional-phase
    /// commands only) plus the timing already applied through it, in
    /// samples. Created lazily on the first skewed IQ slot.
    steer: Option<Resampler>,
    steer_applied: f64,
    /// Subcarrier spacing (Hz) — CFO residuals degrade in units of it.
    scs_hz: f64,
    /// Normal cyclic prefix (µs) — timing residuals degrade in units
    /// of it.
    cp_us: f64,
    /// Front-end sample period (µs) at this cell's sample rate.
    sample_period_us: f64,
}

impl Observer {
    /// Observer at a position with the given receive SNR.
    pub fn new(cfg: &CellConfig, snr_db: f64, iq: bool, seed: u64) -> Observer {
        let numerology = cfg.numerology;
        let scs_hz = numerology.scs_hz();
        let fft = numerology.fft_size(cfg.carrier_prbs);
        let sample_rate_hz = numerology.sample_rate_hz(fft);
        Observer {
            snr_db,
            usrp: VirtualUsrp::new(snr_db, 0.0, seed),
            renderer: iq.then(|| IqRenderer::new(cfg)),
            rng: StdRng::seed_from_u64(seed ^ 0x0B5E),
            schedule: None,
            capture_slot: 0,
            stall_remaining: 0,
            metrics: None,
            clock: None,
            corr_timing_us: 0.0,
            corr_cfo_hz: 0.0,
            last_clock_obs: None,
            steer: None,
            steer_applied: 0.0,
            scs_hz,
            // Normal CP: 144 reference samples against a 2048-FFT symbol
            // whose useful part spans 1/SCS seconds.
            cp_us: 144.0 / 2048.0 * 1e6 / scs_hz,
            sample_period_us: 1e6 / sample_rate_hz,
        }
    }

    /// Sniffer SNR.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    /// Record capture-stage latency and radio counters into a shared
    /// pipeline metrics registry.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Cumulative front-end counters from the virtual USRP.
    pub fn radio_stats(&self) -> nr_radio::RadioStats {
        self.usrp.stats()
    }

    /// Script impairments into subsequent [`Observer::capture`] calls.
    pub fn set_impairments(&mut self, schedule: ImpairmentSchedule) {
        self.schedule = Some(schedule);
    }

    /// Attach a deterministic oscillator model. Every subsequent
    /// [`Observer::capture`] is skewed by the modelled timing offset and
    /// CFO (minus whatever correction the recovery loop has commanded),
    /// and per-slot clock observables become available through
    /// [`Observer::take_clock_observable`].
    pub fn set_clock(&mut self, model: ClockModel) {
        self.clock = Some(model);
    }

    /// Whether an oscillator model is attached.
    pub fn has_clock(&self) -> bool {
        self.clock.is_some()
    }

    /// Feedback path from the timing-recovery loop: the loop's current
    /// *total* corrections (µs of timing, Hz of CFO) — absolute running
    /// sums, not per-slot deltas.
    pub fn apply_clock_correction(&mut self, timing_us: f64, cfo_hz: f64) {
        self.corr_timing_us = timing_us;
        self.corr_cfo_hz = cfo_hz;
    }

    /// The clock observable generated by the most recent capture, if an
    /// oscillator model is attached. `timing_us`/`cfo_hz` are `None` on
    /// slots where no sync signal was decodable (starvation still ages
    /// the loop's health horizon).
    pub fn take_clock_observable(&mut self) -> Option<ClockObservable> {
        self.last_clock_obs.take()
    }

    /// Observe one slot under the impairment schedule. Equivalent to
    /// [`Observer::observe`] when no schedule is set (every slot clean).
    pub fn capture(&mut self, out: &SlotOutput, t: f64) -> Capture {
        let slot = self.capture_slot;
        self.capture_slot += 1;
        let imp = self
            .schedule
            .as_ref()
            .map(|s| s.verdict(slot))
            .unwrap_or_default();
        // Oscillator truth for this slot (the clock keeps drifting even
        // through stalls and drops — only capture stops, not time).
        let truth = self.clock.as_mut().map(|c| c.state_at(slot));
        self.last_clock_obs = truth.as_ref().map(|tr| ClockObservable {
            gap_us: tr.gap_us,
            ..ClockObservable::default()
        });
        if self.stall_remaining > 0 {
            self.stall_remaining -= 1;
            return Capture::Dropped(DropReason::Stall);
        }
        if imp.stall_slots > 0 {
            // The stall swallows this slot and the next `stall_slots - 1`.
            self.stall_remaining = imp.stall_slots - 1;
            return Capture::Dropped(DropReason::Stall);
        }
        if imp.drop {
            return Capture::Dropped(DropReason::Overflow);
        }
        if let Some(tr) = &truth {
            if tr.is_overrun() {
                // USRP overrun: samples fell on the floor. The driver
                // reports the gap size, so the recovery loop feeds the
                // slip forward without waiting for a measurement — the
                // observable above already carries `gap_us`.
                return Capture::Dropped(DropReason::Overflow);
            }
        }
        if imp.agc_kick_db != 0.0 {
            self.usrp.kick_agc_db(imp.agc_kick_db as f32);
            if let Some(m) = &self.metrics {
                m.inc(Counter::AgcKicks);
            }
        }
        if imp.snr_penalty_db != 0.0 {
            if let Some(m) = &self.metrics {
                m.inc(Counter::InterferenceBursts);
            }
            // IQ path: extra noise at the front end. Message path: the
            // corruption model runs at the degraded SNR for this slot.
            self.usrp.inject_snr_penalty_db(imp.snr_penalty_db);
        }
        // Residual clock error = oscillator truth minus the recovery
        // loop's commanded correction. Only the residual hurts.
        let (resid_us, resid_hz) = truth
            .as_ref()
            .map(|tr| {
                (
                    tr.timing_offset_us - self.corr_timing_us,
                    tr.cfo_hz - self.corr_cfo_hz,
                )
            })
            .unwrap_or((0.0, 0.0));
        // Message-fidelity stand-in for what residual timing/CFO does to
        // the demodulator: ICI grows with CFO as a fraction of the
        // subcarrier spacing, ISI with timing error as a fraction of the
        // CP. Quadratic in both (small residuals are nearly free).
        let clock_penalty_db = if truth.is_some() {
            let ti = (resid_us.abs() / self.cp_us).min(4.0);
            let fr = (resid_hz.abs() / self.scs_hz).min(4.0);
            12.0 * ti * ti + 18.0 * fr * fr
        } else {
            0.0
        };
        let clean_snr = self.snr_db;
        self.snr_db -= imp.snr_penalty_db + clock_penalty_db;
        let mut observed = self.observe(out, t);
        self.snr_db = clean_snr;
        if truth.is_some() {
            self.measure_clock(out, &imp, clock_penalty_db, resid_us, resid_hz);
            if let ObservedSlot::Iq { samples, .. } = &mut observed {
                self.apply_iq_residual(samples, resid_us, resid_hz, t);
            }
        }
        if let Some(frac) = imp.truncate {
            truncate_slot(&mut observed, frac);
        }
        Capture::Slot(observed)
    }

    /// Generate the per-slot timing/CFO measurement a real receiver pulls
    /// from SSB (coarse) or DMRS (fine) correlation, or nothing when the
    /// residual has already pushed those signals out of acquisition range.
    fn measure_clock(
        &mut self,
        out: &SlotOutput,
        imp: &nr_radio::SlotImpairment,
        clock_penalty_db: f64,
        resid_us: f64,
        resid_hz: f64,
    ) {
        let Some(obs) = self.last_clock_obs.as_mut() else {
            return;
        };
        let fine_snr = self.snr_db - imp.snr_penalty_db - clock_penalty_db;
        let coarse_snr = self.snr_db - imp.snr_penalty_db;
        let has_dcis = !out.dcis.is_empty();
        let has_ssb = out.mib.is_some();
        if has_dcis
            && fine_snr > 3.0
            && resid_us.abs() <= 0.5 * self.cp_us
            && resid_hz.abs() <= 0.25 * self.scs_hz
        {
            // DMRS-based fine estimate: tight pull-in range, low noise.
            obs.timing_us = Some(resid_us + self.rng.gen_range(-0.02..0.02));
            obs.cfo_hz = Some(resid_hz + self.rng.gen_range(-30.0..30.0));
            obs.coarse = false;
        } else if has_ssb
            && coarse_snr > 3.0
            && resid_us.abs() <= 250.0
            && resid_hz.abs() <= 2.0 * self.scs_hz
        {
            // SSB correlation search: hypothesis-swept, so it tolerates
            // residuals that would blind the demodulator — this is the
            // bootstrap (and post-step reacquisition) path.
            obs.timing_us = Some(resid_us + self.rng.gen_range(-0.05..0.05));
            obs.cfo_hz = Some(resid_hz + self.rng.gen_range(-100.0..100.0));
            obs.coarse = true;
        }
    }

    /// Imprint the residual clock error on a rendered IQ slot: a phase
    /// ramp at the residual CFO, and a timing shift steered through the
    /// streaming resampler (integer slips + fractional phase).
    fn apply_iq_residual(&mut self, samples: &mut Vec<Cf32>, resid_us: f64, resid_hz: f64, t: f64) {
        if resid_hz != 0.0 {
            let w = std::f64::consts::TAU * resid_hz * self.sample_period_us * 1e-6;
            let phi0 = std::f64::consts::TAU * resid_hz * t;
            for (n, s) in samples.iter_mut().enumerate() {
                let phi = (phi0 + w * n as f64) as f32;
                *s *= Cf32::new(phi.cos(), phi.sin());
            }
        }
        let target = resid_us / self.sample_period_us;
        let pending = target - self.steer_applied;
        if pending.abs() > 1e-6 {
            let steer = self.steer.get_or_insert_with(|| Resampler::new(1, 1));
            let whole = pending.trunc();
            // Both commands are clamped by the resampler's slip margin;
            // whatever it accepts is recorded as applied, the rest stays
            // pending for the next slot (the window slides, it does not
            // teleport).
            self.steer_applied += steer.slip(whole as i64) as f64;
            let frac = target - self.steer_applied;
            if frac.abs() > 1e-6 {
                self.steer_applied += steer.adjust_phase(frac);
            }
        }
        if let Some(steer) = &mut self.steer {
            *samples = steer.process(samples);
        }
    }

    /// Residual per-candidate miss probability at arbitrarily good SNR:
    /// models the implementation losses a real sniffer never escapes
    /// (AGC transients, timing drift between resyncs, overlapping SSB
    /// bursts). Calibrated so a well-placed sniffer lands in the paper's
    /// Fig 7 regime (≈0.3% total DL misses including discovery latency).
    pub const RESIDUAL_MISS: f64 = 0.002;

    /// Probability that a candidate at `level` fails to decode cleanly at
    /// the sniffer's SNR — the message-fidelity stand-in for the polar
    /// decoder's block error rate: a logistic link abstraction (QPSK at
    /// the candidate's effective code rate) plus the residual floor.
    pub fn candidate_bler(&self, payload_bits: usize, level: AggregationLevel) -> f64 {
        let k = (payload_bits + 24) as f64;
        let e = level.bits() as f64;
        let entry = McsEntry {
            modulation: Modulation::Qpsk,
            rate_x1024: (k / e * 1024.0).min(1023.0),
        };
        // Polar control channels run ~2 dB below LDPC data thresholds at
        // these short lengths; shift accordingly.
        let waterfall = nr_phy::mcs::bler(entry, self.snr_db + 2.0);
        Self::RESIDUAL_MISS + (1.0 - Self::RESIDUAL_MISS) * waterfall
    }

    /// Observe one slot.
    pub fn observe(&mut self, out: &SlotOutput, t: f64) -> ObservedSlot {
        let _t = Metrics::maybe_start(self.metrics.as_ref(), Stage::Capture);
        if let Some(m) = &self.metrics {
            m.inc(Counter::RadioSlots);
        }
        let pdsch = out
            .pdsch
            .iter()
            .filter_map(|(rnti, content)| {
                let payload = match content {
                    PdschContent::Sib1(bits) => PdschPayload::Sib1(bits.clone()),
                    PdschContent::Rar { tc_rnti } => PdschPayload::Rar(*tc_rnti),
                    PdschContent::RrcSetup(bits) => PdschPayload::RrcSetup(bits.clone()),
                    PdschContent::UserData { .. } => return None,
                };
                Some((*rnti, payload))
            })
            .collect::<Vec<_>>();
        if let Some(renderer) = &self.renderer {
            let tx = renderer.render_iq(out);
            let rx = self.usrp.receive(&tx, t);
            if let Some(m) = &self.metrics {
                m.add(Counter::RadioSamples, rx.samples.len() as u64);
            }
            return ObservedSlot::Iq {
                samples: rx.samples,
                pdsch,
            };
        }
        let mut dcis = Vec::with_capacity(out.dcis.len());
        for dci in &out.dcis {
            // Build the on-air codeword: CRC attach + RNTI scramble, then
            // Gold scramble with the search-space-appropriate identity.
            let mut cw = dci_attach_crc(&dci.payload_bits, dci.rnti.0);
            let c_init = scrambling_for(dci.rnti, dci.rnti_type, out.pci.0);
            scramble_in_place(&mut cw, c_init);
            // Corruption: with candidate BLER probability, flip a burst of
            // bits (an undecodable block, not a single flip the CRC would
            // politely flag).
            let p = self.candidate_bler(dci.payload_bits.len(), dci.level);
            if self.rng.gen::<f64>() < p {
                let flips = self.rng.gen_range(3..12);
                for _ in 0..flips {
                    let i = self.rng.gen_range(0..cw.len());
                    cw[i] ^= 1;
                }
            }
            dcis.push(ObservedDci {
                scrambled_bits: cw,
                cce_start: dci.cce_start,
                level: dci.level,
            });
        }
        let mib_bits = out.mib.as_ref().map(|m| m.encode());
        ObservedSlot::Message {
            mib_bits,
            dcis,
            pdsch,
        }
    }
}

/// Cut a captured slot short (USRP overflow mid-slot): IQ keeps only the
/// leading fraction of samples; at message fidelity the tail candidates
/// and the slot's PDSCH payloads (always late in the slot) are lost.
fn truncate_slot(observed: &mut ObservedSlot, frac: f64) {
    match observed {
        ObservedSlot::Iq { samples, pdsch } => {
            let keep = (samples.len() as f64 * frac) as usize;
            samples.truncate(keep);
            pdsch.clear();
        }
        ObservedSlot::Message { dcis, pdsch, .. } => {
            let keep = (dcis.len() as f64 * frac) as usize;
            dcis.truncate(keep);
            pdsch.clear();
        }
    }
}

/// PDCCH scrambling identity by search space (38.211 §7.3.2.3): the common
/// search space (SI/RA/TC DCIs) scrambles with the cell identity only —
/// which is exactly why NR-Scope can recover unknown TC-RNTIs from MSG 4
/// but not from UE-specific DCIs it has no RNTI for.
pub fn scrambling_for(rnti: Rnti, rnti_type: RntiType, pci: u16) -> u32 {
    match rnti_type {
        RntiType::Si | RntiType::Ra | RntiType::Tc | RntiType::P => pdcch_scrambling_cinit(0, pci),
        RntiType::C => pdcch_scrambling_cinit(rnti.0, pci),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::Gnb;
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn loaded_gnb(seed: u64) -> Gnb {
        let mut g = Gnb::new(CellConfig::srsran_n41(), Box::new(RoundRobin::new()), seed);
        g.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 4e6,
                    packet_bytes: 1200,
                },
                1,
            ),
            0.0,
            10.0,
            1,
        ));
        g
    }

    #[test]
    fn high_snr_codewords_descramble_and_check() {
        let mut g = loaded_gnb(1);
        let mut obs = Observer::new(&g.cfg.clone(), 35.0, false, 9);
        for _ in 0..400 {
            let out = g.step();
            let t = 0.0;
            if out.dcis.is_empty() {
                continue;
            }
            let truth = out.dcis.clone();
            if let ObservedSlot::Message { dcis, .. } = obs.observe(&out, t) {
                for (tx, rx) in truth.iter().zip(&dcis) {
                    let mut cw = rx.scrambled_bits.clone();
                    let c_init = scrambling_for(tx.rnti, tx.rnti_type, g.cfg.pci.0);
                    scramble_in_place(&mut cw, c_init);
                    let payload =
                        nr_phy::crc::dci_check_crc(&cw, tx.rnti.0).expect("clean codeword checks");
                    assert_eq!(payload, tx.payload_bits);
                }
            }
        }
    }

    #[test]
    fn candidate_bler_falls_with_snr_and_level() {
        let cfg = CellConfig::srsran_n41();
        let low = Observer::new(&cfg, 0.0, false, 1);
        let high = Observer::new(&cfg, 25.0, false, 1);
        let p_low = low.candidate_bler(40, AggregationLevel::L2);
        let p_high = high.candidate_bler(40, AggregationLevel::L2);
        assert!(p_low > p_high);
        // Higher aggregation (lower rate) is more robust.
        let l1 = low.candidate_bler(40, AggregationLevel::L1);
        let l8 = low.candidate_bler(40, AggregationLevel::L8);
        assert!(l8 < l1);
    }

    #[test]
    fn corruption_rate_matches_model_at_low_snr() {
        let mut g = loaded_gnb(2);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 4.0, false, 33);
        let (mut total, mut bad) = (0usize, 0usize);
        for s in 0..4000 {
            let out = g.step();
            let truth = out.dcis.clone();
            if let ObservedSlot::Message { dcis, .. } = obs.observe(&out, s as f64 * 0.0005) {
                for (tx, rx) in truth.iter().zip(&dcis) {
                    total += 1;
                    let mut cw = rx.scrambled_bits.clone();
                    scramble_in_place(&mut cw, scrambling_for(tx.rnti, tx.rnti_type, cfg.pci.0));
                    if nr_phy::crc::dci_check_crc(&cw, tx.rnti.0).is_none() {
                        bad += 1;
                    }
                }
            }
        }
        assert!(total > 500);
        let rate = bad as f64 / total as f64;
        let model = obs.candidate_bler(45, AggregationLevel::L2);
        assert!(
            (rate - model).abs() < 0.08,
            "observed {rate:.3} vs model {model:.3}"
        );
    }

    #[test]
    fn capture_without_schedule_matches_observe() {
        let mut g1 = loaded_gnb(4);
        let mut g2 = loaded_gnb(4);
        let cfg = g1.cfg.clone();
        let mut plain = Observer::new(&cfg, 20.0, false, 7);
        let mut chaos = Observer::new(&cfg, 20.0, false, 7);
        for s in 0..200 {
            let t = s as f64 * 0.0005;
            let a = plain.observe(&g1.step(), t);
            let b = chaos.capture(&g2.step(), t);
            let Capture::Slot(b) = b else {
                panic!("clean capture dropped a slot")
            };
            match (a, b) {
                (
                    ObservedSlot::Message { dcis: da, .. },
                    ObservedSlot::Message { dcis: db, .. },
                ) => {
                    assert_eq!(da.len(), db.len());
                    for (x, y) in da.iter().zip(&db) {
                        assert_eq!(x.scrambled_bits, y.scrambled_bits);
                    }
                }
                _ => panic!("expected message slots"),
            }
        }
    }

    #[test]
    fn scheduled_outage_and_stall_drop_the_right_slots() {
        let mut g = loaded_gnb(5);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 30.0, false, 7);
        obs.set_impairments(
            nr_radio::ImpairmentSchedule::new(9)
                .with_outage(10..14)
                .with_stall(20, 3),
        );
        let mut log = Vec::new();
        for s in 0..30 {
            log.push(match obs.capture(&g.step(), s as f64 * 0.0005) {
                Capture::Slot(_) => 'S',
                Capture::Dropped(DropReason::Overflow) => 'O',
                Capture::Dropped(DropReason::Stall) => 'H',
            });
        }
        let s: String = log.iter().collect();
        assert_eq!(&s[10..14], "OOOO", "outage window dropped: {s}");
        assert_eq!(&s[20..23], "HHH", "stall swallowed 3 slots: {s}");
        assert_eq!(s.matches(|c| c != 'S').count(), 7, "nothing else lost: {s}");
    }

    #[test]
    fn truncated_slots_lose_tail_candidates_and_pdsch() {
        let mut g = loaded_gnb(6);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 30.0, false, 7);
        obs.set_impairments(nr_radio::ImpairmentSchedule::new(3).with_truncate_prob(1.0));
        for s in 0..100 {
            let out = g.step();
            let n_dcis = out.dcis.len();
            if let Capture::Slot(ObservedSlot::Message { dcis, pdsch, .. }) =
                obs.capture(&out, s as f64 * 0.0005)
            {
                assert!(dcis.len() <= n_dcis);
                assert!(pdsch.is_empty(), "PDSCH tail lost on truncation");
            }
        }
    }

    #[test]
    fn iq_mode_produces_slot_sized_sample_buffers() {
        let mut g = loaded_gnb(3);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 30.0, true, 5);
        let out = g.step();
        match obs.observe(&out, 0.0) {
            ObservedSlot::Iq { samples, .. } => {
                assert_eq!(samples.len(), 15360, "20 MHz µ=1 slot");
            }
            _ => panic!("expected IQ"),
        }
    }
}
