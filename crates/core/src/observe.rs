//! The observation boundary between the cell and the sniffer.
//!
//! At **message fidelity** the observer converts a gNB [`SlotOutput`] into
//! scrambled DCI codewords plus broadcast payload bits, applying a
//! calibrated corruption model driven by the sniffer's receive SNR: the
//! same quantities the IQ path produces, three orders of magnitude faster.
//!
//! At **IQ fidelity** the observer renders the slot to samples, passes them
//! through the virtual USRP (noise + AGC) and hands the sniffer raw IQ.
//!
//! The observer sits on the "air" side: it may read the gNB's ground truth
//! to *construct the waveform/codewords*, but everything it passes on is
//! exactly what a receiver could capture.

use gnb_sim::gnb::{PdschContent, SlotOutput};
use gnb_sim::iq::IqRenderer;
use gnb_sim::CellConfig;
use nr_phy::complex::Cf32;
use nr_phy::crc::dci_attach_crc;
use nr_phy::mcs::McsEntry;
use nr_phy::modulation::Modulation;
use nr_phy::pdcch::AggregationLevel;
use nr_phy::sequence::{pdcch_scrambling_cinit, scramble_in_place};
use nr_phy::types::{Rnti, RntiType};
use nr_radio::VirtualUsrp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One candidate-shaped PDCCH capture at message fidelity: the scrambled
/// codeword bits as they sit on the candidate's REs (hard decisions).
#[derive(Debug, Clone)]
pub struct ObservedDci {
    /// Scrambled codeword bits (payload ‖ RNTI-scrambled CRC, then Gold
    /// scrambled). Corruption may have flipped bits.
    pub scrambled_bits: Vec<u8>,
    /// First CCE of the candidate.
    pub cce_start: usize,
    /// Aggregation level.
    pub level: AggregationLevel,
}

/// What the sniffer receives for one slot.
#[derive(Debug, Clone)]
pub enum ObservedSlot {
    /// Message fidelity: MIB bits (if SSB present), candidate codewords,
    /// and broadcast PDSCH payloads (SIB1 / RAR / RRC Setup) keyed by the
    /// scheduling RNTI.
    Message {
        /// PBCH payload bits when an SSB fell in this slot.
        mib_bits: Option<Vec<u8>>,
        /// Captured PDCCH candidates.
        dcis: Vec<ObservedDci>,
        /// Broadcast PDSCH payloads (content the sniffer can decode).
        pdsch: Vec<(Rnti, PdschPayload)>,
    },
    /// IQ fidelity: one slot of post-AGC samples.
    Iq {
        /// Received samples.
        samples: Vec<Cf32>,
        /// Broadcast PDSCH payloads. (PDSCH decoding itself is message-
        /// level even in IQ mode — see DESIGN.md: NR-Scope only ever
        /// decodes PDSCH for SIB1/RRC Setup, and we model that path's
        /// 1–2 ms cost, not its waveform.)
        pdsch: Vec<(Rnti, PdschPayload)>,
    },
}

/// Decodable broadcast payload bits.
#[derive(Debug, Clone, PartialEq)]
pub enum PdschPayload {
    /// SIB1 message bits.
    Sib1(Vec<u8>),
    /// Random access response carrying the TC-RNTI.
    Rar(Rnti),
    /// RRC Setup message bits.
    RrcSetup(Vec<u8>),
}

/// The observer: owns the sniffer-side channel model.
pub struct Observer {
    cfg: CellConfig,
    /// Sniffer receive SNR (dB) — placement-dependent (paper Fig 13).
    snr_db: f64,
    usrp: VirtualUsrp,
    renderer: Option<IqRenderer>,
    rng: StdRng,
}

impl Observer {
    /// Observer at a position with the given receive SNR.
    pub fn new(cfg: &CellConfig, snr_db: f64, iq: bool, seed: u64) -> Observer {
        Observer {
            cfg: cfg.clone(),
            snr_db,
            usrp: VirtualUsrp::new(snr_db, 0.0, seed),
            renderer: iq.then(|| IqRenderer::new(cfg)),
            rng: StdRng::seed_from_u64(seed ^ 0x0B5E),
        }
    }

    /// Sniffer SNR.
    pub fn snr_db(&self) -> f64 {
        self.snr_db
    }

    /// Residual per-candidate miss probability at arbitrarily good SNR:
    /// models the implementation losses a real sniffer never escapes
    /// (AGC transients, timing drift between resyncs, overlapping SSB
    /// bursts). Calibrated so a well-placed sniffer lands in the paper's
    /// Fig 7 regime (≈0.3% total DL misses including discovery latency).
    pub const RESIDUAL_MISS: f64 = 0.002;

    /// Probability that a candidate at `level` fails to decode cleanly at
    /// the sniffer's SNR — the message-fidelity stand-in for the polar
    /// decoder's block error rate: a logistic link abstraction (QPSK at
    /// the candidate's effective code rate) plus the residual floor.
    pub fn candidate_bler(&self, payload_bits: usize, level: AggregationLevel) -> f64 {
        let k = (payload_bits + 24) as f64;
        let e = level.bits() as f64;
        let entry = McsEntry {
            modulation: Modulation::Qpsk,
            rate_x1024: (k / e * 1024.0).min(1023.0),
        };
        // Polar control channels run ~2 dB below LDPC data thresholds at
        // these short lengths; shift accordingly.
        let waterfall = nr_phy::mcs::bler(entry, self.snr_db + 2.0);
        Self::RESIDUAL_MISS + (1.0 - Self::RESIDUAL_MISS) * waterfall
    }

    /// Observe one slot.
    pub fn observe(&mut self, out: &SlotOutput, t: f64) -> ObservedSlot {
        let pdsch = out
            .pdsch
            .iter()
            .filter_map(|(rnti, content)| {
                let payload = match content {
                    PdschContent::Sib1(bits) => PdschPayload::Sib1(bits.clone()),
                    PdschContent::Rar { tc_rnti } => PdschPayload::Rar(*tc_rnti),
                    PdschContent::RrcSetup(bits) => PdschPayload::RrcSetup(bits.clone()),
                    PdschContent::UserData { .. } => return None,
                };
                Some((*rnti, payload))
            })
            .collect::<Vec<_>>();
        if let Some(renderer) = &self.renderer {
            let tx = renderer.render_iq(out);
            let rx = self.usrp.receive(&tx, t);
            return ObservedSlot::Iq {
                samples: rx.samples,
                pdsch,
            };
        }
        let mut dcis = Vec::with_capacity(out.dcis.len());
        for dci in &out.dcis {
            // Build the on-air codeword: CRC attach + RNTI scramble, then
            // Gold scramble with the search-space-appropriate identity.
            let mut cw = dci_attach_crc(&dci.payload_bits, dci.rnti.0);
            let c_init = scrambling_for(dci.rnti, dci.rnti_type, self.cfg.pci.0);
            scramble_in_place(&mut cw, c_init);
            // Corruption: with candidate BLER probability, flip a burst of
            // bits (an undecodable block, not a single flip the CRC would
            // politely flag).
            let p = self.candidate_bler(dci.payload_bits.len(), dci.level);
            if self.rng.gen::<f64>() < p {
                let flips = self.rng.gen_range(3..12);
                for _ in 0..flips {
                    let i = self.rng.gen_range(0..cw.len());
                    cw[i] ^= 1;
                }
            }
            dcis.push(ObservedDci {
                scrambled_bits: cw,
                cce_start: dci.cce_start,
                level: dci.level,
            });
        }
        let mib_bits = out.mib.as_ref().map(|m| m.encode());
        ObservedSlot::Message {
            mib_bits,
            dcis,
            pdsch,
        }
    }
}

/// PDCCH scrambling identity by search space (38.211 §7.3.2.3): the common
/// search space (SI/RA/TC DCIs) scrambles with the cell identity only —
/// which is exactly why NR-Scope can recover unknown TC-RNTIs from MSG 4
/// but not from UE-specific DCIs it has no RNTI for.
pub fn scrambling_for(rnti: Rnti, rnti_type: RntiType, pci: u16) -> u32 {
    match rnti_type {
        RntiType::Si | RntiType::Ra | RntiType::Tc | RntiType::P => {
            pdcch_scrambling_cinit(0, pci)
        }
        RntiType::C => pdcch_scrambling_cinit(rnti.0, pci),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnb_sim::Gnb;
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn loaded_gnb(seed: u64) -> Gnb {
        let mut g = Gnb::new(CellConfig::srsran_n41(), Box::new(RoundRobin::new()), seed);
        g.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr { rate_bps: 4e6, packet_bytes: 1200 },
                1,
            ),
            0.0,
            10.0,
            1,
        ));
        g
    }

    #[test]
    fn high_snr_codewords_descramble_and_check() {
        let mut g = loaded_gnb(1);
        let mut obs = Observer::new(&g.cfg.clone(), 35.0, false, 9);
        for _ in 0..400 {
            let out = g.step();
            let t = 0.0;
            if out.dcis.is_empty() {
                continue;
            }
            let truth = out.dcis.clone();
            if let ObservedSlot::Message { dcis, .. } = obs.observe(&out, t) {
                for (tx, rx) in truth.iter().zip(&dcis) {
                    let mut cw = rx.scrambled_bits.clone();
                    let c_init = scrambling_for(tx.rnti, tx.rnti_type, g.cfg.pci.0);
                    scramble_in_place(&mut cw, c_init);
                    let payload = nr_phy::crc::dci_check_crc(&cw, tx.rnti.0)
                        .expect("clean codeword checks");
                    assert_eq!(payload, tx.payload_bits);
                }
            }
        }
    }

    #[test]
    fn candidate_bler_falls_with_snr_and_level() {
        let cfg = CellConfig::srsran_n41();
        let low = Observer::new(&cfg, 0.0, false, 1);
        let high = Observer::new(&cfg, 25.0, false, 1);
        let p_low = low.candidate_bler(40, AggregationLevel::L2);
        let p_high = high.candidate_bler(40, AggregationLevel::L2);
        assert!(p_low > p_high);
        // Higher aggregation (lower rate) is more robust.
        let l1 = low.candidate_bler(40, AggregationLevel::L1);
        let l8 = low.candidate_bler(40, AggregationLevel::L8);
        assert!(l8 < l1);
    }

    #[test]
    fn corruption_rate_matches_model_at_low_snr() {
        let mut g = loaded_gnb(2);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 4.0, false, 33);
        let (mut total, mut bad) = (0usize, 0usize);
        for s in 0..4000 {
            let out = g.step();
            let truth = out.dcis.clone();
            if let ObservedSlot::Message { dcis, .. } =
                obs.observe(&out, s as f64 * 0.0005)
            {
                for (tx, rx) in truth.iter().zip(&dcis) {
                    total += 1;
                    let mut cw = rx.scrambled_bits.clone();
                    scramble_in_place(
                        &mut cw,
                        scrambling_for(tx.rnti, tx.rnti_type, cfg.pci.0),
                    );
                    if nr_phy::crc::dci_check_crc(&cw, tx.rnti.0).is_none() {
                        bad += 1;
                    }
                }
            }
        }
        assert!(total > 500);
        let rate = bad as f64 / total as f64;
        let model = obs.candidate_bler(45, AggregationLevel::L2);
        assert!(
            (rate - model).abs() < 0.08,
            "observed {rate:.3} vs model {model:.3}"
        );
    }

    #[test]
    fn iq_mode_produces_slot_sized_sample_buffers() {
        let mut g = loaded_gnb(3);
        let cfg = g.cfg.clone();
        let mut obs = Observer::new(&cfg, 30.0, true, 5);
        let out = g.step();
        match obs.observe(&out, 0.0) {
            ObservedSlot::Iq { samples, .. } => {
                assert_eq!(samples.len(), 15360, "20 MHz µ=1 slot");
            }
            _ => panic!("expected IQ"),
        }
    }
}
