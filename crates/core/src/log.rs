//! JSON-lines telemetry log output (the Fig 4 "Log File").
//!
//! One JSON object per decoded DCI, newline-delimited, so downstream
//! applications (congestion controllers, video servers) can tail the
//! stream — the integration path the paper's §6 use cases rely on.
//!
//! Long-running capture must not die because the log disk filled: the
//! [`TelemetryLogger`] wrapper swallows write errors, counts them in the
//! metrics registry (`log_write_failures`), and keeps the pipeline alive.

use crate::metrics::{Counter, Metrics};
use crate::telemetry::TelemetryRecord;
use std::io::{self, Write};
use std::sync::Arc;

/// Write records as JSON lines.
pub fn write_jsonl<W: Write>(mut sink: W, records: &[TelemetryRecord]) -> io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut sink, r)?;
        sink.write_all(b"\n")?;
    }
    Ok(())
}

/// Read records back from JSON lines (skips malformed lines, returning the
/// parse-error count alongside). Records stamped with a future
/// `schema_version` are counted as malformed — their field semantics are
/// unknowable to this build.
pub fn read_jsonl(data: &str) -> (Vec<TelemetryRecord>, usize) {
    let mut out = Vec::new();
    let mut bad = 0;
    for line in data.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TelemetryRecord>(line) {
            Ok(r) if r.schema_version <= crate::SCHEMA_VERSION => out.push(r),
            Ok(_) | Err(_) => bad += 1,
        }
    }
    (out, bad)
}

/// A telemetry sink that never aborts capture: write failures are counted
/// in the metrics registry instead of propagated. Losing a log line is
/// recoverable (the journal still has the record); losing hours of capture
/// to a full disk is not.
pub struct TelemetryLogger<W: Write> {
    sink: W,
    metrics: Arc<Metrics>,
    failures: u64,
}

impl<W: Write> TelemetryLogger<W> {
    /// Wrap a sink; `metrics` receives a `log_write_failures` increment per
    /// failed batch.
    pub fn new(sink: W, metrics: Arc<Metrics>) -> Self {
        TelemetryLogger {
            sink,
            metrics,
            failures: 0,
        }
    }

    /// Append a batch of records. Returns how many batches have failed so
    /// far (0 meaning every write has landed).
    pub fn append(&mut self, records: &[TelemetryRecord]) -> u64 {
        if let Err(_e) = write_jsonl(&mut self.sink, records) {
            self.failures += 1;
            self.metrics.inc(Counter::LogWriteFailures);
        }
        self.failures
    }

    /// Flush the underlying sink; failures count like write failures.
    pub fn flush(&mut self) -> u64 {
        if self.sink.flush().is_err() {
            self.failures += 1;
            self.metrics.inc(Counter::LogWriteFailures);
        }
        self.failures
    }

    /// Total failed operations since construction.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Unwrap the inner sink (tests; final flush responsibility moves to
    /// the caller).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::dci::DciFormat;
    use nr_phy::pdcch::AggregationLevel;
    use nr_phy::types::{Rnti, RntiType};

    fn rec(slot: u64) -> TelemetryRecord {
        TelemetryRecord {
            schema_version: crate::SCHEMA_VERSION,
            slot,
            sfn: 0,
            rnti: Rnti(0x4601),
            rnti_type: RntiType::C,
            format: DciFormat::Dl1_1,
            level: AggregationLevel::L2,
            cce_start: 0,
            prb_start: 0,
            prb_len: 4,
            symbol_start: 2,
            symbol_len: 12,
            mcs: 15,
            ndi: 1,
            rv: 0,
            harq_id: 3,
            layers: 2,
            tbs: 4000,
            is_retx: false,
        }
    }

    #[test]
    fn round_trip_through_jsonl() {
        let records = vec![rec(1), rec(2), rec(3)];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let (back, bad) = read_jsonl(&text);
        assert_eq!(bad, 0);
        assert_eq!(back, records);
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[rec(9)]).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{not json}\n");
        let (back, bad) = read_jsonl(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(bad, 1);
    }

    #[test]
    fn future_schema_records_are_rejected() {
        let mut future = rec(5);
        future.schema_version = crate::SCHEMA_VERSION + 1;
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[rec(4), future]).unwrap();
        let (back, bad) = read_jsonl(&String::from_utf8(buf).unwrap());
        assert_eq!(back.len(), 1, "only the current-schema record survives");
        assert_eq!(bad, 1);
    }

    /// A sink that fails after N bytes — the full-disk scenario.
    struct FailingSink {
        remaining: usize,
    }

    impl Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.remaining == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
            }
            let n = buf.len().min(self.remaining);
            self.remaining -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn logger_counts_failures_instead_of_aborting() {
        let metrics = Metrics::shared(true);
        let mut logger = TelemetryLogger::new(FailingSink { remaining: 64 }, Arc::clone(&metrics));
        let mut failures = 0;
        for slot in 0..10 {
            failures = logger.append(&[rec(slot)]);
        }
        assert!(failures > 0, "sink dies after 64 bytes; later batches fail");
        assert_eq!(
            metrics.snapshot().counter("log_write_failures"),
            Some(failures)
        );
    }
}
