//! JSON-lines telemetry log output (the Fig 4 "Log File").
//!
//! One JSON object per decoded DCI, newline-delimited, so downstream
//! applications (congestion controllers, video servers) can tail the
//! stream — the integration path the paper's §6 use cases rely on.

use crate::telemetry::TelemetryRecord;
use std::io::{self, Write};

/// Write records as JSON lines.
pub fn write_jsonl<W: Write>(mut sink: W, records: &[TelemetryRecord]) -> io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut sink, r)?;
        sink.write_all(b"\n")?;
    }
    Ok(())
}

/// Read records back from JSON lines (skips malformed lines, returning the
/// parse-error count alongside).
pub fn read_jsonl(data: &str) -> (Vec<TelemetryRecord>, usize) {
    let mut out = Vec::new();
    let mut bad = 0;
    for line in data.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(r) => out.push(r),
            Err(_) => bad += 1,
        }
    }
    (out, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::dci::DciFormat;
    use nr_phy::pdcch::AggregationLevel;
    use nr_phy::types::{Rnti, RntiType};

    fn rec(slot: u64) -> TelemetryRecord {
        TelemetryRecord {
            slot,
            sfn: 0,
            rnti: Rnti(0x4601),
            rnti_type: RntiType::C,
            format: DciFormat::Dl1_1,
            level: AggregationLevel::L2,
            cce_start: 0,
            prb_start: 0,
            prb_len: 4,
            symbol_start: 2,
            symbol_len: 12,
            mcs: 15,
            ndi: 1,
            rv: 0,
            harq_id: 3,
            layers: 2,
            tbs: 4000,
            is_retx: false,
        }
    }

    #[test]
    fn round_trip_through_jsonl() {
        let records = vec![rec(1), rec(2), rec(3)];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let (back, bad) = read_jsonl(&text);
        assert_eq!(bad, 0);
        assert_eq!(back, records);
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[rec(9)]).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{not json}\n");
        let (back, bad) = read_jsonl(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(bad, 1);
    }
}
