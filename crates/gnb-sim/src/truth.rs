//! The ground-truth log — the role srsRAN's gNB log plays in the paper's
//! evaluation (§5.2.1): per-TTI DCI content and grants that NR-Scope's
//! decodes are matched against by (timestamp, TTI index).

use nr_mac::Allocation;
use nr_phy::types::{Rnti, RntiType};
use serde::{Deserialize, Serialize};

/// One logged DCI transmission with its grant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthRecord {
    /// Absolute TTI index.
    pub slot: u64,
    /// System frame number at transmission.
    pub sfn: u32,
    /// RNTI addressed.
    pub rnti: Rnti,
    /// RNTI classification.
    pub rnti_type: RntiType,
    /// The grant (frequency/time allocation, MCS, HARQ, TBS).
    pub alloc: Allocation,
    /// Whether the UE ultimately decoded this block (ACK) — ground truth
    /// for delivered-byte accounting.
    pub acked: bool,
}

/// Append-only ground-truth log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TruthLog {
    records: Vec<TruthRecord>,
}

impl TruthLog {
    /// Empty log.
    pub fn new() -> TruthLog {
        TruthLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, record: TruthRecord) {
        self.records.push(record)
    }

    /// All records.
    pub fn records(&self) -> &[TruthRecord] {
        &self.records
    }

    /// Records of one slot.
    pub fn in_slot(&self, slot: u64) -> impl Iterator<Item = &TruthRecord> {
        // Records are appended in slot order; binary search the range.
        let start = self.records.partition_point(|r| r.slot < slot);
        self.records[start..]
            .iter()
            .take_while(move |r| r.slot == slot)
    }

    /// Records addressed to one RNTI.
    pub fn for_rnti(&self, rnti: Rnti) -> impl Iterator<Item = &TruthRecord> {
        self.records.iter().filter(move |r| r.rnti == rnti)
    }

    /// Count of downlink data DCIs (C-RNTI 1_1) in the log.
    pub fn dl_dci_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.rnti_type == RntiType::C && r.alloc.format == nr_phy::dci::DciFormat::Dl1_1
            })
            .count()
    }

    /// Count of uplink DCIs (C-RNTI 0_1).
    pub fn ul_dci_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.rnti_type == RntiType::C && r.alloc.format == nr_phy::dci::DciFormat::Ul0_1
            })
            .count()
    }

    /// Total ACKed bytes for an RNTI within a slot window.
    pub fn acked_bytes(&self, rnti: Rnti, slots: std::ops::Range<u64>) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.rnti == rnti
                    && r.acked
                    && !r.alloc.is_retx
                    && slots.contains(&r.slot)
                    && r.alloc.format == nr_phy::dci::DciFormat::Dl1_1
            })
            .map(|r| r.alloc.payload_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::dci::DciFormat;

    fn rec(slot: u64, rnti: u16, format: DciFormat, acked: bool) -> TruthRecord {
        TruthRecord {
            slot,
            sfn: (slot / 20) as u32,
            rnti: Rnti(rnti),
            rnti_type: RntiType::C,
            alloc: Allocation {
                rnti: Rnti(rnti),
                format,
                prb_start: 0,
                prb_len: 5,
                symbol_start: 2,
                symbol_len: 12,
                mcs: 10,
                layers: 2,
                harq_id: 0,
                ndi: 0,
                rv: 0,
                is_retx: false,
                tbs: 8000,
            },
            acked,
        }
    }

    #[test]
    fn slot_lookup_uses_ordering() {
        let mut log = TruthLog::new();
        log.push(rec(1, 1, DciFormat::Dl1_1, true));
        log.push(rec(2, 1, DciFormat::Dl1_1, true));
        log.push(rec(2, 2, DciFormat::Ul0_1, true));
        log.push(rec(5, 1, DciFormat::Dl1_1, false));
        assert_eq!(log.in_slot(2).count(), 2);
        assert_eq!(log.in_slot(3).count(), 0);
    }

    #[test]
    fn dl_ul_counters() {
        let mut log = TruthLog::new();
        log.push(rec(1, 1, DciFormat::Dl1_1, true));
        log.push(rec(1, 1, DciFormat::Ul0_1, true));
        log.push(rec(2, 2, DciFormat::Dl1_1, true));
        assert_eq!(log.dl_dci_count(), 2);
        assert_eq!(log.ul_dci_count(), 1);
    }

    #[test]
    fn acked_bytes_excludes_nacks_and_retx() {
        let mut log = TruthLog::new();
        log.push(rec(1, 7, DciFormat::Dl1_1, true));
        log.push(rec(2, 7, DciFormat::Dl1_1, false));
        let mut retx = rec(3, 7, DciFormat::Dl1_1, true);
        retx.alloc.is_retx = true;
        log.push(retx);
        assert_eq!(log.acked_bytes(Rnti(7), 0..10), 1000);
    }
}
