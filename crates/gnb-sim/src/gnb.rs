//! The slot-synchronous gNB simulator.
//!
//! Each call to [`Gnb::step`] advances one TTI and returns the
//! [`SlotOutput`] a passive observer could capture off the air: the MIB (if
//! an SSB burst falls in the slot), every PDCCH DCI with its payload bits
//! and CCE placement, and the PDSCH payloads of the broadcast messages
//! (SIB1, RAR, RRC Setup). Simultaneously it appends the srsRAN-log-style
//! ground truth (`TruthLog`) used by the evaluation.
//!
//! Simplifications relative to a production gNB (documented in DESIGN.md):
//! HARQ feedback is applied in the transmitting slot (no n+k PUCCH delay)
//! and MSG 3 contention resolution always succeeds. Neither affects what
//! the sniffer can observe — DCI placement, scrambling and HARQ/NDI
//! sequences are exactly as a real cell would emit them.

use crate::cell::CellConfig;
use crate::hostile::HostileConfig;
use crate::truth::{TruthLog, TruthRecord};
use nr_mac::{Allocation, GnbHarqEntity, RachEvent, RachProcedure, RntiAllocator, Scheduler};
use nr_phy::dci::{riv_encode, Dci, DciFormat, DciSizing};
use nr_phy::frame::{SlotClock, SlotDirection};
use nr_phy::mcs::{bler, McsEntry};
use nr_phy::pdcch::{candidate_cce, ue_search_space_y, AggregationLevel};
use nr_phy::types::{Pci, Rnti, RntiType};
use nr_rrc::Mib;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use ue_sim::SimUe;

/// One DCI as transmitted on the PDCCH in a slot.
#[derive(Debug, Clone, PartialEq)]
pub struct TxDci {
    /// Addressed RNTI (scrambles the CRC).
    pub rnti: Rnti,
    /// RNTI classification.
    pub rnti_type: RntiType,
    /// Packed DCI payload bits (pre-CRC).
    pub payload_bits: Vec<u8>,
    /// The translated grant.
    pub alloc: Allocation,
    /// First CCE of the candidate carrying this DCI.
    pub cce_start: usize,
    /// Aggregation level.
    pub level: AggregationLevel,
}

/// PDSCH payloads of the broadcast/setup messages (message-level content —
/// user-plane PDSCH carries only its size, which is what telemetry needs).
#[derive(Debug, Clone, PartialEq)]
pub enum PdschContent {
    /// SIB1 bits.
    Sib1(Vec<u8>),
    /// Random access response: carries the TC-RNTI assignment.
    Rar {
        /// Assigned temporary C-RNTI.
        tc_rnti: Rnti,
    },
    /// MSG 4 RRC Setup bits.
    RrcSetup(Vec<u8>),
    /// User data of a given size (content abstracted).
    UserData {
        /// Transport block size in bits.
        tbs: u32,
    },
}

/// Everything observable in one downlink slot.
#[derive(Debug, Clone, Default)]
pub struct SlotOutput {
    /// Absolute TTI index.
    pub slot: u64,
    /// System frame number.
    pub sfn: u32,
    /// Slot within the frame.
    pub slot_in_frame: usize,
    /// Slot direction under the cell's TDD pattern.
    pub direction: Option<SlotDirection>,
    /// The cell identity every transmission in this slot is scrambled
    /// with — what is physically on the air (changes on cell restart).
    pub pci: Pci,
    /// MIB, when an SSB burst falls in this slot.
    pub mib: Option<Mib>,
    /// All PDCCH transmissions.
    pub dcis: Vec<TxDci>,
    /// PDSCH payloads keyed by the RNTI whose DCI schedules them.
    pub pdsch: Vec<(Rnti, PdschContent)>,
}

/// Attachment state of a UE inside the gNB.
#[derive(Debug)]
struct AttachedUe {
    ue: SimUe,
    /// Slot the UE connected (MSG 4 sent).
    connected_slot: u64,
}

/// In-flight HARQ payload bookkeeping.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    bytes: usize,
    packets: usize,
    retransmitted: bool,
}

/// The simulated gNodeB.
pub struct Gnb {
    /// Static cell configuration.
    pub cfg: CellConfig,
    clock: SlotClock,
    rnti_alloc: RntiAllocator,
    rach: RachProcedure,
    /// UEs that sent a preamble and await MSG 4, keyed by TC-RNTI.
    rach_pending: HashMap<Rnti, SimUe>,
    /// UEs waiting for the next PRACH occasion.
    arrival_queue: Vec<SimUe>,
    /// RRC-connected UEs keyed by C-RNTI (BTreeMap for deterministic order).
    connected: std::collections::BTreeMap<Rnti, AttachedUe>,
    harqs: HashMap<Rnti, GnbHarqEntity>,
    in_flight: HashMap<(Rnti, u8), InFlight>,
    scheduler: Box<dyn Scheduler + Send>,
    truth: TruthLog,
    rng: StdRng,
    /// Sizing for UE-specific DCIs (carrier-wide BWP).
    sizing: DciSizing,
    /// Sizing for common-search-space DCIs (initial BWP = CORESET 0 width,
    /// so a sniffer can size them from the MIB alone).
    common_sizing: DciSizing,
    /// Adversarial emission profile; `None` = benign cell. The RNG is
    /// separate from `rng` so arming hostility never perturbs the
    /// legitimate emission stream.
    hostile: Option<(HostileConfig, StdRng)>,
}

impl Gnb {
    /// Build a gNB for a cell with a scheduler.
    pub fn new(cfg: CellConfig, scheduler: Box<dyn Scheduler + Send>, seed: u64) -> Gnb {
        let sizing = DciSizing {
            bwp_prbs: cfg.carrier_prbs,
        };
        let common_sizing = DciSizing {
            bwp_prbs: cfg.coreset.n_prb,
        };
        Gnb {
            clock: SlotClock::new(cfg.numerology),
            rnti_alloc: RntiAllocator::new(),
            rach: RachProcedure::new(),
            rach_pending: HashMap::new(),
            arrival_queue: Vec::new(),
            connected: std::collections::BTreeMap::new(),
            harqs: HashMap::new(),
            in_flight: HashMap::new(),
            scheduler,
            truth: TruthLog::new(),
            rng: StdRng::seed_from_u64(seed),
            sizing,
            common_sizing,
            hostile: None,
            cfg,
        }
    }

    /// Arm the hostile emission profile. Adversarial transmissions start
    /// with the next downlink slot and are never entered in the
    /// ground-truth log.
    pub fn arm_hostile(&mut self, cfg: HostileConfig) {
        self.hostile = Some((cfg, StdRng::seed_from_u64(cfg.seed)));
    }

    /// Disarm the hostile profile.
    pub fn disarm_hostile(&mut self) {
        self.hostile = None;
    }

    /// Whether a hostile profile is armed.
    pub fn hostile_armed(&self) -> bool {
        self.hostile.is_some()
    }

    /// Queue a UE to start random access at the next PRACH occasion.
    pub fn ue_arrives(&mut self, ue: SimUe) {
        self.arrival_queue.push(ue);
    }

    /// Detach a UE by simulation id (session ended). Returns the UE with
    /// its ground-truth delivery log.
    pub fn ue_departs(&mut self, id: u64) -> Option<SimUe> {
        let rnti = self
            .connected
            .iter()
            .find(|(_, a)| a.ue.id == id)
            .map(|(r, _)| *r)?;
        let att = self.connected.remove(&rnti)?;
        self.rnti_alloc.release(rnti);
        self.harqs.remove(&rnti);
        self.in_flight.retain(|(r, _), _| *r != rnti);
        Some(att.ue)
    }

    /// Apply a live configuration change, e.g. a SIB1 content update.
    /// Broadcasts pick up the new values at their next period; DCI sizings
    /// are recomputed. The scheduler keeps its construction-time config
    /// (operators restart the cell to change scheduling parameters).
    pub fn reconfigure(&mut self, f: impl FnOnce(&mut CellConfig)) {
        f(&mut self.cfg);
        self.sizing = DciSizing {
            bwp_prbs: self.cfg.carrier_prbs,
        };
        self.common_sizing = DciSizing {
            bwp_prbs: self.cfg.coreset.n_prb,
        };
    }

    /// Restart the cell under a new PCI (operator maintenance / PCI
    /// confusion repair). Every attached or mid-RACH UE is detached and
    /// re-queued for random access; RNTI, RACH and HARQ state reset. The
    /// slot clock and ground-truth log keep running — a sniffer sees the
    /// same cell go dark for its DCIs and come back with new scrambling.
    pub fn restart(&mut self, new_pci: Pci) {
        self.cfg.pci = new_pci;
        let connected = std::mem::take(&mut self.connected);
        for (_, a) in connected {
            self.arrival_queue.push(a.ue);
        }
        for (_, ue) in self.rach_pending.drain() {
            self.arrival_queue.push(ue);
        }
        // Deterministic re-attach order regardless of map iteration.
        self.arrival_queue.sort_by_key(|u| u.id);
        self.rnti_alloc = RntiAllocator::new();
        self.rach = RachProcedure::new();
        self.harqs.clear();
        self.in_flight.clear();
    }

    /// Connected C-RNTIs (ground truth for the UE-tracking evaluation).
    pub fn connected_rntis(&self) -> Vec<Rnti> {
        self.connected.keys().copied().collect()
    }

    /// Access a connected UE by RNTI.
    pub fn ue(&self, rnti: Rnti) -> Option<&SimUe> {
        self.connected.get(&rnti).map(|a| &a.ue)
    }

    /// Mutable access to a connected UE.
    pub fn ue_mut(&mut self, rnti: Rnti) -> Option<&mut SimUe> {
        self.connected.get_mut(&rnti).map(|a| &mut a.ue)
    }

    /// The ground-truth log.
    pub fn truth(&self) -> &TruthLog {
        &self.truth
    }

    /// Current slot clock.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// DCI payload sizing for UE-specific DCIs in this cell.
    pub fn sizing(&self) -> DciSizing {
        self.sizing
    }

    /// DCI payload sizing for common-search-space DCIs (initial BWP).
    pub fn common_sizing(&self) -> DciSizing {
        self.common_sizing
    }

    /// Advance one TTI.
    pub fn step(&mut self) -> SlotOutput {
        let slot = self.clock.absolute_slot;
        let sfn = self.clock.sfn;
        let slot_in_frame = self.clock.slot;
        let t = self.clock.elapsed_s();
        let dt = self.cfg.slot_s();
        let pattern = match self.cfg.duplex {
            nr_rrc::sib1::Duplex::Fdd => nr_phy::TddPattern::fdd(),
            nr_rrc::sib1::Duplex::Tdd => self.cfg.tdd.clone(),
        };
        let direction = pattern.direction(slot_in_frame);

        // 1. Application traffic accrues for every attached UE.
        for a in self.connected.values_mut() {
            a.ue.generate_traffic(dt);
        }
        for ue in self.rach_pending.values_mut() {
            ue.generate_traffic(dt);
        }

        // 2. PRACH occasion: waiting UEs transmit preambles (MSG 1).
        if self.cfg.rach.is_prach_occasion(slot) && !self.arrival_queue.is_empty() {
            for ue in self.arrival_queue.drain(..) {
                if let Some(tc_rnti) = self.rnti_alloc.allocate() {
                    self.rach.preamble_received(slot, tc_rnti);
                    self.rach_pending.insert(tc_rnti, ue);
                }
            }
        }

        let mut out = SlotOutput {
            slot,
            sfn,
            slot_in_frame,
            direction: Some(direction),
            pci: self.cfg.pci,
            ..SlotOutput::default()
        };

        if pattern.has_downlink(slot_in_frame) {
            self.downlink_slot(&mut out, slot, sfn, slot_in_frame, t);
        }

        self.clock.tick();
        out
    }

    /// Emit everything belonging to a downlink(-capable) slot.
    fn downlink_slot(
        &mut self,
        out: &mut SlotOutput,
        slot: u64,
        sfn: u32,
        slot_in_frame: usize,
        t: f64,
    ) {
        let n_cces = self.cfg.coreset.n_cces();
        let mut cce_used = vec![false; n_cces];
        let mut dci_budget = self.cfg.max_dcis_per_slot();

        // SSB burst: MIB every `ssb_period_frames`, in slot 0.
        if slot_in_frame == 0 && sfn.is_multiple_of(self.cfg.ssb_period_frames) {
            out.mib = Some(self.cfg.mib((sfn % 1024) as u16));
        }

        // SIB1: SI-RNTI DCI + payload, every `sib1_period_frames`, slot 0.
        if slot_in_frame == 0 && sfn.is_multiple_of(self.cfg.sib1_period_frames) && dci_budget > 0 {
            let sib_bits = self.cfg.sib1().encode();
            let prb_len = 6.min(self.cfg.carrier_prbs);
            if let Some(tx) = self.place_dci(
                Rnti::SI,
                RntiType::Si,
                DciFormat::Dl1_1,
                0,
                prb_len,
                0,
                0,
                slot_in_frame,
                &mut cce_used,
            ) {
                out.pdsch.push((Rnti::SI, PdschContent::Sib1(sib_bits)));
                self.truth.push(TruthRecord {
                    slot,
                    sfn,
                    rnti: Rnti::SI,
                    rnti_type: RntiType::Si,
                    alloc: tx.alloc,
                    acked: true,
                });
                out.dcis.push(tx);
                dci_budget -= 1;
            }
        }

        // RACH progress: MSG 2 and MSG 4 consume PDCCH space too.
        for event in self.rach.tick(slot) {
            match event {
                RachEvent::SendMsg2 { ra_rnti, tc_rnti } => {
                    if dci_budget == 0 {
                        // PDCCH congestion: restart the procedure (the UE
                        // retries its preamble after the response window).
                        self.rach.retry(self.next_prach_occasion(slot), tc_rnti);
                        continue;
                    }
                    if let Some(tx) = self.place_dci(
                        ra_rnti,
                        RntiType::Ra,
                        DciFormat::Dl1_1,
                        0,
                        2.min(self.cfg.carrier_prbs),
                        0,
                        0,
                        slot_in_frame,
                        &mut cce_used,
                    ) {
                        out.pdsch.push((ra_rnti, PdschContent::Rar { tc_rnti }));
                        self.truth.push(TruthRecord {
                            slot,
                            sfn,
                            rnti: ra_rnti,
                            rnti_type: RntiType::Ra,
                            alloc: tx.alloc,
                            acked: true,
                        });
                        out.dcis.push(tx);
                        dci_budget -= 1;
                    } else {
                        // Both common candidates blocked: retry later.
                        self.rach.retry(self.next_prach_occasion(slot), tc_rnti);
                    }
                }
                RachEvent::UeSendsMsg3 { .. } => {
                    // Uplink; invisible to the DL sniffer. Contention
                    // resolution always succeeds in this simulation.
                }
                RachEvent::SendMsg4 { tc_rnti } => {
                    if dci_budget == 0 {
                        // Postpone: restart so MSG 4 retries shortly (rare
                        // under realistic load).
                        self.rach.retry(self.next_prach_occasion(slot), tc_rnti);
                        continue;
                    }
                    let setup_bits = self.cfg.rrc_setup().encode();
                    if let Some(tx) = self.place_dci(
                        tc_rnti,
                        RntiType::Tc,
                        DciFormat::Dl1_1,
                        0,
                        3.min(self.cfg.carrier_prbs),
                        0,
                        0,
                        slot_in_frame,
                        &mut cce_used,
                    ) {
                        out.pdsch
                            .push((tc_rnti, PdschContent::RrcSetup(setup_bits)));
                        self.truth.push(TruthRecord {
                            slot,
                            sfn,
                            rnti: tc_rnti,
                            rnti_type: RntiType::Tc,
                            alloc: tx.alloc,
                            acked: true,
                        });
                        out.dcis.push(tx);
                        dci_budget -= 1;
                        // TC-RNTI promotes to C-RNTI: the UE is connected.
                        if let Some(ue) = self.rach_pending.remove(&tc_rnti) {
                            self.connected.insert(
                                tc_rnti,
                                AttachedUe {
                                    ue,
                                    connected_slot: slot,
                                },
                            );
                            self.harqs.insert(tc_rnti, GnbHarqEntity::new());
                        }
                    } else {
                        // Candidate collision: retry the whole procedure so
                        // the UE is not stranded.
                        self.rach.retry(self.next_prach_occasion(slot), tc_rnti);
                    }
                }
            }
        }

        // Downlink data scheduling.
        let sched_cfg = {
            let mut c = self.cfg.scheduler_config();
            c.max_dcis_per_slot = dci_budget;
            c
        };
        let sched_ues: Vec<nr_mac::SchedUe> = self
            .connected
            .iter()
            .map(|(r, a)| nr_mac::SchedUe {
                rnti: *r,
                buffer_bytes: a.ue.dl_buffer,
                snr_db: a.ue.snr_db_at(t),
                avg_rate: a.ue.avg_rate,
            })
            .collect();
        let allocations = self
            .scheduler
            .schedule(slot, &sched_ues, &mut self.harqs, &sched_cfg);
        for alloc in allocations {
            let Some(tx) = self.place_ue_dci(&alloc, slot_in_frame, &mut cce_used) else {
                // PDCCH blocking: revert the optimistic HARQ transition so
                // no NDI toggle or phantom retransmission leaks on air.
                let harq = self
                    .harqs
                    .get_mut(&alloc.rnti)
                    .expect("scheduled UE has HARQ");
                if alloc.is_retx {
                    harq.cancel_retx(alloc.harq_id);
                } else {
                    harq.cancel_new(alloc.harq_id);
                }
                continue;
            };
            dci_budget = dci_budget.saturating_sub(1);
            let acked = self.transmit_dl_block(&alloc, slot, t);
            self.truth.push(TruthRecord {
                slot,
                sfn,
                rnti: alloc.rnti,
                rnti_type: RntiType::C,
                alloc,
                acked,
            });
            out.pdsch
                .push((alloc.rnti, PdschContent::UserData { tbs: alloc.tbs }));
            out.dcis.push(tx);
        }

        // Uplink grants for UEs with uplink demand, in leftover budget.
        if dci_budget > 0 {
            let ul_ues: Vec<Rnti> = self
                .connected
                .iter()
                .filter(|(_, a)| a.ue.ul_buffer > 0)
                .map(|(r, _)| *r)
                .take(dci_budget)
                .collect();
            let mut prb_cursor = 0usize;
            for rnti in ul_ues {
                let att = self.connected.get(&rnti).expect("listed above");
                let snr = att.ue.snr_db_at(t);
                let mcs = nr_phy::mcs::select_mcs(self.cfg.mcs_table, snr, 0.1);
                let entry = self.cfg.mcs_table.entry(mcs).expect("valid MCS");
                let demand = att.ue.ul_buffer;
                let prb_len = ul_span_for(demand, entry, &self.cfg).max(1);
                if prb_cursor + prb_len > self.cfg.carrier_prbs {
                    break;
                }
                let tbs = nr_phy::tbs::transport_block_size(&nr_phy::tbs::TbsParams {
                    n_prb: prb_len,
                    n_symbols: self.cfg.data_symbols(),
                    dmrs_per_prb: self.cfg.dmrs_per_prb,
                    overhead_per_prb: self.cfg.x_overhead,
                    mcs: entry,
                    layers: 1,
                });
                let alloc = Allocation {
                    rnti,
                    format: DciFormat::Ul0_1,
                    prb_start: prb_cursor,
                    prb_len,
                    symbol_start: 0,
                    symbol_len: self.cfg.data_symbols(),
                    mcs,
                    layers: 1,
                    harq_id: (slot % 16) as u8,
                    ndi: (slot / 16 % 2) as u8,
                    rv: 0,
                    is_retx: false,
                    tbs,
                };
                let Some(tx) = self.place_ue_dci(&alloc, slot_in_frame, &mut cce_used) else {
                    continue;
                };
                self.connected
                    .get_mut(&rnti)
                    .expect("listed above")
                    .ue
                    .consume_uplink((tbs / 8) as usize);
                self.truth.push(TruthRecord {
                    slot,
                    sfn,
                    rnti,
                    rnti_type: RntiType::C,
                    alloc,
                    acked: true,
                });
                out.dcis.push(tx);
                prb_cursor += prb_len;
            }
        }

        // Adversarial emissions last: they contend for leftover CCE space
        // and never displace legitimate traffic or enter the truth log.
        self.emit_hostile(out, slot, slot_in_frame, &mut cce_used);
    }

    /// Inject this slot's due hostile emissions (see [`crate::hostile`]).
    fn emit_hostile(
        &mut self,
        out: &mut SlotOutput,
        slot: u64,
        slot_in_frame: usize,
        cce_used: &mut [bool],
    ) {
        let Some((cfg, mut rng)) = self.hostile.take() else {
            return;
        };
        let due = |p: u64| HostileConfig::due(p, slot);

        // Ghost MSG 4: well-formed DCI at a random C-range RNTI plus a
        // valid RRC Setup payload — the full phantom-UE lure.
        if due(cfg.ghost_dci_period) {
            let rnti = self.draw_ghost_rnti(&mut rng);
            let bits = self
                .well_formed_hostile_dci(&mut rng)
                .pack(&self.common_sizing);
            if let Some(tx) = self.place_hostile(rnti, RntiType::Tc, bits, slot_in_frame, cce_used)
            {
                out.pdsch
                    .push((rnti, PdschContent::RrcSetup(self.cfg.rrc_setup().encode())));
                out.dcis.push(tx);
            }
        }

        // Persistent ghost: same RNTI every time, so the sniffer's
        // probation window lapses between sightings and the quarantine
        // ledger sees counted reappearances.
        if due(cfg.persistent_ghost_period) {
            let rnti = Rnti(cfg.persistent_ghost_rnti);
            if !self.connected.contains_key(&rnti) && !self.rach_pending.contains_key(&rnti) {
                let bits = self
                    .well_formed_hostile_dci(&mut rng)
                    .pack(&self.common_sizing);
                if let Some(tx) =
                    self.place_hostile(rnti, RntiType::Tc, bits, slot_in_frame, cce_used)
                {
                    out.pdsch
                        .push((rnti, PdschContent::RrcSetup(self.cfg.rrc_setup().encode())));
                    out.dcis.push(tx);
                }
            }
        }

        // Reserved-bit violation: valid DCI with the vrb-to-prb reserved
        // bit forced high (stage-1 `ReservedBitsSet`).
        if due(cfg.reserved_bits_period) {
            let rnti = self.draw_ghost_rnti(&mut rng);
            let mut bits = self
                .well_formed_hostile_dci(&mut rng)
                .pack(&self.common_sizing);
            let reserved_idx = 1 + self.common_sizing.f_alloc_bits() + 4;
            bits[reserved_idx] = 1;
            if let Some(tx) = self.place_hostile(rnti, RntiType::Tc, bits, slot_in_frame, cce_used)
            {
                out.dcis.push(tx);
            }
        }

        // Malformed fields, rotating: RIV outside the BWP, an
        // unconfigured TDRA row, a reserved-MCS initial transmission.
        if due(cfg.malformed_fields_period) {
            let rnti = self.draw_ghost_rnti(&mut rng);
            let mut dci = self.well_formed_hostile_dci(&mut rng);
            match slot / cfg.malformed_fields_period % 3 {
                0 => {
                    let bits = self.common_sizing.f_alloc_bits();
                    dci.f_alloc = (1u32 << bits) - 1;
                }
                1 => dci.t_alloc = 0xF,
                _ => {
                    dci.mcs = 31;
                    dci.rv = 0;
                }
            }
            let bits = dci.pack(&self.common_sizing);
            if let Some(tx) = self.place_hostile(rnti, RntiType::Tc, bits, slot_in_frame, cce_used)
            {
                out.dcis.push(tx);
            }
        }

        // Broken RRC encodings behind well-formed DCIs, rotating:
        // truncated SIB1, oversized SIB1, oversized RRC Setup.
        if due(cfg.bad_rrc_period) {
            let bits = self
                .well_formed_hostile_dci(&mut rng)
                .pack(&self.common_sizing);
            match slot / cfg.bad_rrc_period % 3 {
                0 => {
                    let mut sib = self.cfg.sib1().encode();
                    sib.truncate(sib.len() / 2);
                    if let Some(tx) =
                        self.place_hostile(Rnti::SI, RntiType::Si, bits, slot_in_frame, cce_used)
                    {
                        out.pdsch.push((Rnti::SI, PdschContent::Sib1(sib)));
                        out.dcis.push(tx);
                    }
                }
                1 => {
                    let mut sib = self.cfg.sib1().encode();
                    sib.extend(std::iter::repeat_n(1, 8));
                    if let Some(tx) =
                        self.place_hostile(Rnti::SI, RntiType::Si, bits, slot_in_frame, cce_used)
                    {
                        out.pdsch.push((Rnti::SI, PdschContent::Sib1(sib)));
                        out.dcis.push(tx);
                    }
                }
                _ => {
                    let rnti = self.draw_ghost_rnti(&mut rng);
                    let mut setup = self.cfg.rrc_setup().encode();
                    setup.extend(std::iter::repeat_n(0, 16));
                    if let Some(tx) =
                        self.place_hostile(rnti, RntiType::Tc, bits, slot_in_frame, cce_used)
                    {
                        out.pdsch.push((rnti, PdschContent::RrcSetup(setup)));
                        out.dcis.push(tx);
                    }
                }
            }
        }

        // Contradictory SIB1: valid encoding, different content, varying
        // between emissions — a flapping signal must never displace the
        // real cell state (the reload rule wants consecutive agreement).
        if due(cfg.sib1_spoof_period) {
            let mut spoof = self.cfg.sib1();
            spoof.cell_id ^= 1 + slot / cfg.sib1_spoof_period % 7;
            spoof.carrier_prbs = spoof.carrier_prbs.saturating_sub(1).max(1);
            let bits = self
                .well_formed_hostile_dci(&mut rng)
                .pack(&self.common_sizing);
            if let Some(tx) =
                self.place_hostile(Rnti::SI, RntiType::Si, bits, slot_in_frame, cce_used)
            {
                out.pdsch
                    .push((Rnti::SI, PdschContent::Sib1(spoof.encode())));
                out.dcis.push(tx);
            }
        }

        self.hostile = Some((cfg, rng));
    }

    /// A random C-range RNTI not currently attached or mid-RACH — ghosts
    /// must never alias a real UE, or the adversarial accounting check
    /// would blame the sniffer for the simulator's own collision.
    fn draw_ghost_rnti(&self, rng: &mut StdRng) -> Rnti {
        loop {
            let r = Rnti(rng.gen_range(0x8000u16..Rnti::C_RNTI_LAST + 1));
            if !self.connected.contains_key(&r) && !self.rach_pending.contains_key(&r) {
                return r;
            }
        }
    }

    /// A field-plausible downlink DCI at the common sizing: every stage-1
    /// check passes, so only stage-2 admission can stop it.
    fn well_formed_hostile_dci(&self, rng: &mut StdRng) -> Dci {
        let bwp = self.common_sizing.bwp_prbs;
        let prb_len = 1 + rng.gen_range(0usize..bwp);
        let prb_start = rng.gen_range(0usize..bwp - prb_len + 1);
        Dci {
            format: DciFormat::Dl1_1,
            f_alloc: riv_encode(prb_start, prb_len, bwp),
            t_alloc: rng.gen_range(0u8..12),
            mcs: rng.gen_range(0u8..28),
            ndi: rng.gen_range(0u8..2),
            rv: 0,
            harq_id: rng.gen_range(0u8..16),
            dai: 0,
            tpc: 1,
            harq_feedback: 2,
            ports: 2,
            srs_request: 0,
            dmrs_id: 0,
        }
    }

    /// Place a pre-packed hostile payload on a free common-search-space
    /// candidate. The carried `alloc` is a nominal one-PRB grant — truth
    /// accounting never sees it, and the observer only consumes the
    /// payload bits and CCE placement.
    fn place_hostile(
        &mut self,
        rnti: Rnti,
        rnti_type: RntiType,
        payload_bits: Vec<u8>,
        _slot_in_frame: usize,
        cce_used: &mut [bool],
    ) -> Option<TxDci> {
        let cce_start = self.free_candidate(0, cce_used)?;
        let level = self.cfg.aggregation_level;
        cce_used[cce_start..cce_start + level.cces()].fill(true);
        let alloc = Allocation {
            rnti,
            format: DciFormat::Dl1_1,
            prb_start: 0,
            prb_len: 1,
            symbol_start: 2,
            symbol_len: self.cfg.data_symbols(),
            mcs: 0,
            layers: 1,
            harq_id: 0,
            ndi: 0,
            rv: 0,
            is_retx: false,
            tbs: 0,
        };
        Some(TxDci {
            rnti,
            rnti_type,
            payload_bits,
            alloc,
            cce_start,
            level,
        })
    }

    /// Transmit one downlink data block: dequeue bytes on first TX, draw
    /// the UE's decode outcome from the link-abstraction BLER, apply HARQ
    /// feedback, and record the delivery on ACK. Returns `acked`.
    fn transmit_dl_block(&mut self, alloc: &Allocation, slot: u64, t: f64) -> bool {
        let key = (alloc.rnti, alloc.harq_id);
        let slot_s = self.cfg.slot_s();
        let att = self.connected.get_mut(&alloc.rnti).expect("connected");
        if !alloc.is_retx {
            let (bytes, packets) = att.ue.dequeue_for_tx(alloc.payload_bytes());
            self.in_flight.insert(
                key,
                InFlight {
                    bytes,
                    packets,
                    retransmitted: false,
                },
            );
        } else if let Some(f) = self.in_flight.get_mut(&key) {
            f.retransmitted = true;
        }
        // Decode probability from the UE's instantaneous SNR. Each
        // retransmission adds combining gain (~+3 dB of effective SNR).
        let entry = self.cfg.mcs_table.entry(alloc.mcs).expect("valid MCS");
        let harq = self
            .harqs
            .get_mut(&alloc.rnti)
            .expect("connected UE has HARQ");
        let combining_gain = 3.0 * harq.retx_count(alloc.harq_id) as f64;
        let p_err = bler(entry, att.ue.snr_db_at(t) + combining_gain);
        let ack = self.rng.gen::<f64>() >= p_err;
        let completed = harq.feedback(alloc.harq_id, ack);
        if completed {
            if let Some(f) = self.in_flight.remove(&key) {
                if ack {
                    att.ue
                        .record_delivery(slot, f.bytes, f.packets, f.retransmitted, slot_s);
                }
                // On drop (max retx), bytes are simply lost (RLC would
                // recover them; out of scope).
            }
        }
        ack
    }

    /// Pack a broadcast-ish DCI and place it on a common-search-space
    /// candidate. Returns `None` if every candidate is blocked.
    #[allow(clippy::too_many_arguments)]
    fn place_dci(
        &mut self,
        rnti: Rnti,
        rnti_type: RntiType,
        format: DciFormat,
        prb_start: usize,
        prb_len: usize,
        mcs: u8,
        harq_id: u8,
        slot_in_frame: usize,
        cce_used: &mut [bool],
    ) -> Option<TxDci> {
        let tbs = nr_phy::tbs::transport_block_size(&nr_phy::tbs::TbsParams {
            n_prb: prb_len,
            n_symbols: self.cfg.data_symbols(),
            dmrs_per_prb: self.cfg.dmrs_per_prb,
            overhead_per_prb: self.cfg.x_overhead,
            mcs: self.cfg.mcs_table.entry(mcs)?,
            layers: 1,
        });
        let alloc = Allocation {
            rnti,
            format,
            prb_start,
            prb_len,
            symbol_start: 2,
            symbol_len: self.cfg.data_symbols(),
            mcs,
            layers: 1,
            harq_id,
            ndi: 0,
            rv: 0,
            is_retx: false,
            tbs,
        };
        self.place_with_y(&alloc, rnti_type, 0, slot_in_frame, cce_used)
    }

    /// Pack a scheduled allocation's DCI and place it on the UE's search
    /// space.
    fn place_ue_dci(
        &mut self,
        alloc: &Allocation,
        slot_in_frame: usize,
        cce_used: &mut [bool],
    ) -> Option<TxDci> {
        let y = ue_search_space_y(alloc.rnti, 0, slot_in_frame);
        self.place_with_y(alloc, RntiType::C, y, slot_in_frame, cce_used)
    }

    fn place_with_y(
        &mut self,
        alloc: &Allocation,
        rnti_type: RntiType,
        y: u32,
        _slot_in_frame: usize,
        cce_used: &mut [bool],
    ) -> Option<TxDci> {
        let sizing = if rnti_type == RntiType::C {
            self.sizing
        } else {
            self.common_sizing
        };
        let bwp_prbs = sizing.bwp_prbs;
        let level = self.cfg.aggregation_level;
        let cce_start = self.free_candidate(y, cce_used)?;
        cce_used[cce_start..cce_start + level.cces()].fill(true);
        let t_alloc_row = 0u8; // rows 2..14 per TIME_ALLOC_TABLE[0]
        debug_assert!(alloc.prb_start + alloc.prb_len <= bwp_prbs);
        let dci = Dci {
            format: alloc.format,
            f_alloc: riv_encode(alloc.prb_start, alloc.prb_len, bwp_prbs),
            t_alloc: t_alloc_row,
            mcs: alloc.mcs,
            ndi: alloc.ndi,
            rv: alloc.rv,
            harq_id: alloc.harq_id,
            dai: 0,
            tpc: 1,
            harq_feedback: 2,
            ports: if alloc.layers > 1 { 7 } else { 2 },
            srs_request: 0,
            dmrs_id: 0,
        };
        Some(TxDci {
            rnti: alloc.rnti,
            rnti_type,
            payload_bits: dci.pack(&sizing),
            alloc: *alloc,
            cce_start,
            level,
        })
    }

    /// First unblocked candidate of search space `y` at the cell's
    /// aggregation level, or `None` if every candidate is occupied.
    fn free_candidate(&self, y: u32, cce_used: &[bool]) -> Option<usize> {
        let level = self.cfg.aggregation_level;
        let n_cces = self.cfg.coreset.n_cces();
        let n_cand = self.cfg.candidates_per_level as usize;
        (0..n_cand).find_map(|m| {
            let start = candidate_cce(y, level, m, n_cand, n_cces)?;
            let span = start..start + level.cces();
            if span.end <= n_cces && !cce_used[span.clone()].iter().any(|&u| u) {
                Some(start)
            } else {
                None
            }
        })
    }

    /// The next PRACH occasion strictly after `slot` (retries re-enter the
    /// RACH there, like a real UE backing off to the next occasion).
    fn next_prach_occasion(&self, slot: u64) -> u64 {
        let period = self.cfg.rach.prach_period_slots as u64;
        let offset = self.cfg.rach.prach_slot_offset as u64;
        let base = slot + 1;
        base + (period + offset - base % period) % period
    }

    /// Slots since a UE connected (used by tests/evaluation).
    pub fn connected_duration(&self, rnti: Rnti) -> Option<u64> {
        self.connected
            .get(&rnti)
            .map(|a| self.clock.absolute_slot.saturating_sub(a.connected_slot))
    }
}

/// Smallest UL PRB span whose single-layer TBS covers `bytes`.
fn ul_span_for(bytes: usize, entry: McsEntry, cfg: &CellConfig) -> usize {
    let bits = (bytes * 8) as u32;
    for n_prb in 1..=cfg.carrier_prbs {
        let tbs = nr_phy::tbs::transport_block_size(&nr_phy::tbs::TbsParams {
            n_prb,
            n_symbols: cfg.data_symbols(),
            dmrs_per_prb: cfg.dmrs_per_prb,
            overhead_per_prb: cfg.x_overhead,
            mcs: entry,
            layers: 1,
        });
        if tbs >= bits {
            return n_prb;
        }
    }
    cfg.carrier_prbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::MobilityScenario;

    fn test_ue(id: u64) -> SimUe {
        SimUe::new(
            id,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 2e6,
                    packet_bytes: 1200,
                },
                id,
            ),
            0.0,
            30.0,
            id,
        )
    }

    fn gnb() -> Gnb {
        Gnb::new(CellConfig::srsran_n41(), Box::new(RoundRobin::new()), 42)
    }

    #[test]
    fn ssb_and_sib1_appear_periodically() {
        let mut g = gnb();
        let mut mibs = 0;
        let mut sibs = 0;
        for _ in 0..(20 * 40) {
            let out = g.step();
            if out.mib.is_some() {
                mibs += 1;
            }
            if out
                .pdsch
                .iter()
                .any(|(_, c)| matches!(c, PdschContent::Sib1(_)))
            {
                sibs += 1;
            }
        }
        // 40 frames: SSB every 2 frames → 20; SIB1 every 16 frames → 3.
        assert_eq!(mibs, 20);
        assert_eq!(sibs, 3);
    }

    #[test]
    fn restart_requeues_ues_through_rach_under_new_pci() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        g.ue_arrives(test_ue(2));
        for _ in 0..200 {
            g.step();
        }
        assert_eq!(g.connected_rntis().len(), 2, "both attached before restart");
        let old_rntis = g.connected_rntis();
        g.restart(Pci(7));
        assert_eq!(g.cfg.pci, Pci(7));
        assert!(g.connected_rntis().is_empty(), "restart detaches everyone");
        for _ in 0..400 {
            g.step();
        }
        let new_rntis = g.connected_rntis();
        assert_eq!(new_rntis.len(), 2, "UEs re-attach after restart");
        // Fresh allocator: new RNTIs restart from the base, proving the
        // RACH procedure actually re-ran rather than state surviving.
        assert_eq!(new_rntis, old_rntis, "allocator reset reissues from base");
    }

    #[test]
    fn reconfigure_changes_the_broadcast_sib1() {
        let mut g = gnb();
        let before = g.cfg.sib1();
        g.reconfigure(|c| c.sib1_period_frames = 8);
        let after = g.cfg.sib1();
        assert_ne!(before, after, "SIB1 content changed");
        // The next broadcast carries the new content.
        let mut seen = None;
        for _ in 0..(20 * 40) {
            let out = g.step();
            if let Some((_, PdschContent::Sib1(bits))) = out
                .pdsch
                .iter()
                .find(|(_, c)| matches!(c, PdschContent::Sib1(_)))
            {
                seen = Some(nr_rrc::Sib1::decode(bits).unwrap());
                break;
            }
        }
        assert_eq!(seen.expect("SIB1 broadcast"), after);
    }

    #[test]
    fn rach_connects_a_ue_and_promotes_tc_rnti() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        let mut saw_msg2 = false;
        let mut saw_msg4 = false;
        for _ in 0..60 {
            let out = g.step();
            for (_, c) in &out.pdsch {
                match c {
                    PdschContent::Rar { .. } => saw_msg2 = true,
                    PdschContent::RrcSetup(bits) => {
                        saw_msg4 = true;
                        // RRC Setup decodes with the cell's configuration.
                        let setup = nr_rrc::RrcSetup::decode(bits).unwrap();
                        assert_eq!(setup, g.cfg.rrc_setup());
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_msg2 && saw_msg4);
        assert_eq!(g.connected_rntis().len(), 1);
    }

    #[test]
    fn connected_ue_gets_dl_data_dcis() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        let mut data_dcis = 0;
        for _ in 0..2000 {
            let out = g.step();
            data_dcis += out
                .dcis
                .iter()
                .filter(|d| d.rnti_type == RntiType::C && d.alloc.format == DciFormat::Dl1_1)
                .count();
        }
        assert!(data_dcis > 100, "got {data_dcis} data DCIs in 1 s");
    }

    #[test]
    fn ul_grants_issued_for_uplink_demand() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        let mut ul = 0;
        for _ in 0..2000 {
            let out = g.step();
            ul += out
                .dcis
                .iter()
                .filter(|d| d.alloc.format == DciFormat::Ul0_1)
                .count();
        }
        assert!(ul > 10, "got {ul} UL DCIs");
    }

    #[test]
    fn delivered_bytes_track_offered_load() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        for _ in 0..4000 {
            g.step();
        }
        let rnti = g.connected_rntis()[0];
        let ue = g.ue(rnti).unwrap();
        let delivered = ue.delivered_bytes_in(0..4000);
        // 2 s at 2 Mbit/s ≈ 500 kB offered; connection setup eats a little.
        assert!(
            (300_000..=550_000).contains(&delivered),
            "delivered {delivered}"
        );
    }

    #[test]
    fn truth_log_matches_emitted_dcis() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        let mut emitted = 0usize;
        for _ in 0..1000 {
            let out = g.step();
            emitted += out.dcis.len();
        }
        assert_eq!(g.truth().records().len(), emitted);
    }

    #[test]
    fn hostile_emissions_stay_out_of_the_truth_log() {
        let mut g = gnb();
        g.arm_hostile(HostileConfig::default());
        g.ue_arrives(test_ue(1));
        let mut legit = 0usize;
        let mut hostile = 0usize;
        for _ in 0..2000 {
            let out = g.step();
            for tx in &out.dcis {
                let in_truth = g
                    .truth()
                    .records()
                    .iter()
                    .any(|r| r.slot == out.slot && r.rnti == tx.rnti && r.alloc == tx.alloc);
                if in_truth {
                    legit += 1;
                } else {
                    hostile += 1;
                }
            }
        }
        assert_eq!(
            g.truth().records().len(),
            legit,
            "every truth record matches a legitimate on-air DCI"
        );
        assert!(hostile > 100, "hostile profile actually emits");
    }

    #[test]
    fn arming_hostility_does_not_perturb_legitimate_emissions() {
        let run = |hostile: bool| {
            let mut g = gnb();
            if hostile {
                g.arm_hostile(HostileConfig::default());
            }
            g.ue_arrives(test_ue(1));
            g.ue_arrives(test_ue(2));
            for _ in 0..2000 {
                g.step();
            }
            g.truth().records().to_vec()
        };
        assert_eq!(
            run(false),
            run(true),
            "ground-truth stream is bit-identical with the hostile profile armed"
        );
    }

    #[test]
    fn no_dcis_in_pure_uplink_slots() {
        let mut g = gnb();
        g.ue_arrives(test_ue(1));
        for _ in 0..2000 {
            let out = g.step();
            if out.direction == Some(SlotDirection::Uplink) {
                assert!(out.dcis.is_empty());
                assert!(out.mib.is_none());
            }
        }
    }

    #[test]
    fn cce_placements_never_collide() {
        let mut g = gnb();
        for i in 0..8 {
            g.ue_arrives(test_ue(i));
        }
        for _ in 0..2000 {
            let out = g.step();
            let mut used = vec![false; g.cfg.coreset.n_cces()];
            for d in &out.dcis {
                for (c, u) in used
                    .iter_mut()
                    .enumerate()
                    .skip(d.cce_start)
                    .take(d.level.cces())
                {
                    assert!(!*u, "CCE {c} double-booked in slot {}", out.slot);
                    *u = true;
                }
            }
        }
    }

    #[test]
    fn departure_releases_state() {
        let mut g = gnb();
        g.ue_arrives(test_ue(5));
        for _ in 0..100 {
            g.step();
        }
        assert_eq!(g.connected_rntis().len(), 1);
        let ue = g.ue_departs(5).expect("was connected");
        assert!(!ue.deliveries.is_empty() || ue.dl_buffer > 0);
        assert!(g.connected_rntis().is_empty());
    }

    #[test]
    fn retransmissions_happen_on_bad_channels() {
        let mut g = Gnb::new(CellConfig::srsran_n41(), Box::new(RoundRobin::new()), 7);
        let ue = SimUe::new(
            9,
            ChannelProfile::Urban,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                9,
            ),
            -4.0,
            60.0,
            9,
        );
        g.ue_arrives(ue);
        for _ in 0..4000 {
            g.step();
        }
        let retx = g
            .truth()
            .records()
            .iter()
            .filter(|r| r.alloc.is_retx)
            .count();
        assert!(
            retx > 5,
            "urban channel should cause retransmissions: {retx}"
        );
    }
}
