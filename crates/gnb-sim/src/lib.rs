//! # gnb-sim — a simulated 5G Standalone gNodeB
//!
//! Substitute for the paper's four testbeds (srsRAN/Open5GS, Mosolabs
//! Aether small cell, Amarisoft Callbox, T-Mobile commercial cells): a
//! slot-synchronous gNB that broadcasts MIB/SIB1, runs the four-message
//! RACH procedure, schedules downlink and uplink traffic with HARQ and
//! link adaptation, and emits everything a passive sniffer can observe —
//! either as typed per-slot messages (message fidelity) or rendered to IQ
//! samples (IQ fidelity) — **plus** a ground-truth log in the role of the
//! srsRAN gNB log the paper matches against (§5.2.1).

pub mod cell;
pub mod gnb;
pub mod hostile;
pub mod iq;
pub mod multicell;
pub mod population;
pub mod truth;

pub use cell::CellConfig;
pub use gnb::{Gnb, SlotOutput, TxDci};
pub use hostile::HostileConfig;
pub use multicell::{Handover, HandoverRecord, MultiCellSim};
pub use population::Population;
pub use truth::{TruthLog, TruthRecord};
