//! IQ-fidelity rendering: turn a [`SlotOutput`] into a slot resource grid
//! and time-domain samples — the waveform the paper's USRP receives.
//!
//! The PDCCH path is bit-exact: each DCI is CRC+RNTI-scrambled, polar
//! encoded, Gold-scrambled, QPSK modulated and mapped onto its CCEs with
//! DMRS pilots. The SSB carries real PSS/SSS sequences plus the
//! polar-coded MIB. PDSCH regions are filled with unit-power filler QPSK
//! (payload content is abstracted; occupancy is real so REG counting and
//! spare-capacity analysis see the true grid).

use crate::cell::CellConfig;
use crate::gnb::{SlotOutput, TxDci};
use nr_phy::complex::Cf32;
use nr_phy::crc::dci_attach_crc;
use nr_phy::dci::time_alloc;
use nr_phy::grid::ResourceGrid;
use nr_phy::modulation::{modulate, Modulation};
use nr_phy::ofdm::Ofdm;
use nr_phy::pdcch::{encode_pdcch, PdcchAllocation};
use nr_phy::polar::PolarCode;
use nr_phy::sequence::gold_bits;
use nr_phy::sync::{pss_sequence, sss_sequence, SYNC_SEQ_LEN};
use nr_phy::types::Pci;
use nr_phy::types::Rnti;

/// Number of bits the PBCH carries after polar coding (E for the MIB).
pub const PBCH_E_BITS: usize = 864;

/// Renders slots of one cell to IQ.
pub struct IqRenderer {
    cfg: CellConfig,
    ofdm: Ofdm,
}

impl IqRenderer {
    /// Build a renderer for a cell.
    pub fn new(cfg: &CellConfig) -> IqRenderer {
        IqRenderer {
            ofdm: Ofdm::new(cfg.numerology, cfg.carrier_prbs),
            cfg: cfg.clone(),
        }
    }

    /// The OFDM configuration (FFT size, sample rate) in use.
    pub fn ofdm(&self) -> &Ofdm {
        &self.ofdm
    }

    /// Render a slot to its resource grid.
    pub fn render_grid(&self, out: &SlotOutput) -> ResourceGrid {
        let mut grid = ResourceGrid::new(self.cfg.carrier_prbs);
        if let Some(mib) = &out.mib {
            self.map_ssb(&mut grid, &mib.encode(), out.pci);
        }
        for dci in &out.dcis {
            self.map_dci(&mut grid, dci, out.slot_in_frame, out.pci);
        }
        for dci in &out.dcis {
            // Only downlink data regions occupy the DL grid.
            if dci.alloc.format == nr_phy::dci::DciFormat::Dl1_1 {
                self.fill_pdsch(&mut grid, dci);
            }
        }
        grid
    }

    /// Render a slot to time-domain samples.
    pub fn render_iq(&self, out: &SlotOutput) -> Vec<Cf32> {
        let grid = self.render_grid(out);
        self.ofdm.modulate(&grid, out.slot_in_frame)
    }

    /// Map the SS/PBCH block: PSS on symbol 0, SSS on symbol 2, polar-coded
    /// MIB (PBCH) filling symbols 1–3 around them. The paper's tool uses
    /// this block for cell search and MIB acquisition (§3.1.1).
    fn map_ssb(&self, grid: &mut ResourceGrid, mib_bits: &[u8], pci: Pci) {
        let n_sc = grid.n_subcarriers();
        // SSB occupies 240 subcarriers (20 PRBs) centred in the carrier.
        let ssb_width = 240.min(n_sc);
        let base = (n_sc - ssb_width) / 2;
        // PSS at symbol 0, centred 127 subcarriers.
        let pss = pss_sequence(pci.nid2());
        let sync_base = base + (ssb_width - SYNC_SEQ_LEN) / 2;
        for (i, s) in pss.iter().enumerate() {
            grid.set(0, sync_base + i, *s);
        }
        // SSS at symbol 2.
        let sss = sss_sequence(pci);
        for (i, s) in sss.iter().enumerate() {
            grid.set(2, sync_base + i, *s);
        }
        // PBCH: MIB + CRC24C, polar coded to E bits, QPSK, mapped across
        // symbols 1 and 3 (and the SSS symbol's side PRBs are left empty —
        // a simplification of the 38.211 PBCH RE layout).
        let cw = dci_attach_crc(mib_bits, 0); // PBCH CRC is unscrambled (RNTI 0)
        let code = PolarCode::new(cw.len(), PBCH_E_BITS);
        let mut bits = code.encode(&cw);
        // Cell-scoped scrambling so neighbouring cells don't alias.
        let scr = gold_bits(pci.0 as u32, bits.len());
        for (b, s) in bits.iter_mut().zip(scr) {
            *b ^= s;
        }
        let syms = modulate(&bits, Modulation::Qpsk);
        let per_symbol = ssb_width;
        for (i, s) in syms.iter().enumerate() {
            let (sym, k) = if i < per_symbol {
                (1, i)
            } else {
                (3, i - per_symbol)
            };
            if k < ssb_width {
                grid.set(sym, base + k, *s);
            }
        }
    }

    /// Map one DCI through the full PDCCH encode chain.
    fn map_dci(&self, grid: &mut ResourceGrid, dci: &TxDci, slot_in_frame: usize, pci: Pci) {
        let alloc = PdcchAllocation {
            cce_start: dci.cce_start,
            level: dci.level,
            rnti: dci.rnti,
        };
        let ue_specific = dci.rnti_type == nr_phy::types::RntiType::C;
        let c_init = nr_phy::pdcch::search_space_cinit(dci.rnti, ue_specific, pci.0);
        encode_pdcch(
            grid,
            &self.cfg.coreset,
            &alloc,
            &dci.payload_bits,
            pci.0,
            c_init,
            slot_in_frame,
        );
    }

    /// Fill a grant's PDSCH region with filler QPSK so occupancy (REG
    /// counts, spare-capacity) is physically present on the grid.
    fn fill_pdsch(&self, grid: &mut ResourceGrid, dci: &TxDci) {
        let (sym_start, sym_len) = time_alloc(0);
        let _ = (sym_start, sym_len);
        let a = &dci.alloc;
        let seed = (a.rnti.0 as u32) << 8 | a.harq_id as u32;
        let n_res = a.prb_len * 12 * a.symbol_len;
        let bits = gold_bits(seed | 0x4000_0000, n_res * 2);
        let syms = modulate(&bits, Modulation::Qpsk);
        let mut it = syms.iter();
        for sym in a.symbol_start..a.symbol_start + a.symbol_len {
            for prb in a.prb_start..a.prb_start + a.prb_len {
                for k in ResourceGrid::reg_subcarriers(prb) {
                    if let Some(s) = it.next() {
                        grid.set(sym, k, *s);
                    }
                }
            }
        }
    }
}

/// Convenience: total REs occupied by data allocations in a slot (ground
/// truth for Fig 8 REG-error accounting).
pub fn data_res_in(out: &SlotOutput) -> usize {
    out.dcis
        .iter()
        .filter(|d| d.alloc.format == nr_phy::dci::DciFormat::Dl1_1 && d.rnti != Rnti::SI)
        .map(|d| d.alloc.reg_count() * 12)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellConfig;
    use crate::gnb::Gnb;
    use nr_mac::RoundRobin;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn run_to_slot_with_dci() -> (CellConfig, SlotOutput) {
        let cfg = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cfg.clone(), Box::new(RoundRobin::new()), 3);
        gnb.ue_arrives(SimUe::new(
            1,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::Cbr {
                    rate_bps: 5e6,
                    packet_bytes: 1200,
                },
                1,
            ),
            0.0,
            10.0,
            1,
        ));
        for _ in 0..200 {
            let out = gnb.step();
            if out
                .dcis
                .iter()
                .any(|d| d.rnti_type == nr_phy::types::RntiType::C)
            {
                return (cfg, out);
            }
        }
        panic!("no data DCI within 200 slots");
    }

    #[test]
    fn rendered_slot_has_expected_sample_count() {
        let (cfg, out) = run_to_slot_with_dci();
        let r = IqRenderer::new(&cfg);
        let iq = r.render_iq(&out);
        assert_eq!(iq.len(), r.ofdm().samples_per_slot(out.slot_in_frame));
    }

    #[test]
    fn pdcch_res_are_occupied() {
        let (cfg, out) = run_to_slot_with_dci();
        let r = IqRenderer::new(&cfg);
        let grid = r.render_grid(&out);
        // The CORESET symbol must hold energy on the scheduled CCEs.
        let dci = &out.dcis[0];
        let regs = cfg.coreset.cce_regs(dci.cce_start);
        let (sym, prb) = regs[0];
        let energy: f32 = ResourceGrid::reg_subcarriers(prb)
            .map(|k| grid.get(sym, k).norm_sqr())
            .sum();
        assert!(energy > 1.0, "CCE REs empty");
    }

    #[test]
    fn pdsch_region_matches_grant() {
        let (cfg, out) = run_to_slot_with_dci();
        let r = IqRenderer::new(&cfg);
        let grid = r.render_grid(&out);
        let data_dci = out
            .dcis
            .iter()
            .find(|d| d.rnti_type == nr_phy::types::RntiType::C)
            .unwrap();
        let a = &data_dci.alloc;
        let occupied = grid.occupied_res(a.symbol_start..a.symbol_start + a.symbol_len);
        // At least the allocated REs are non-zero in those symbols.
        assert!(occupied >= a.prb_len * 12 * a.symbol_len);
    }

    #[test]
    fn ssb_slot_contains_pss() {
        let cfg = CellConfig::srsran_n41();
        let mut gnb = Gnb::new(cfg.clone(), Box::new(RoundRobin::new()), 4);
        let out = gnb.step(); // slot 0 of SFN 0 carries the SSB
        assert!(out.mib.is_some());
        let r = IqRenderer::new(&cfg);
        let grid = r.render_grid(&out);
        // Correlate symbol 0 against the cell's PSS.
        let n_sc = grid.n_subcarriers();
        let base = (n_sc - 240) / 2 + (240 - SYNC_SEQ_LEN) / 2;
        let rx: Vec<Cf32> = (0..SYNC_SEQ_LEN).map(|i| grid.get(0, base + i)).collect();
        let (nid2, corr) = nr_phy::sync::detect_pss(&rx);
        assert_eq!(nid2, cfg.pci.nid2());
        assert!(corr > 0.99);
    }
}
