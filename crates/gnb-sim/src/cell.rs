//! Cell configuration presets matching the paper's four evaluation networks
//! (§5.1 Methodology).

use nr_phy::mcs::McsTable;
use nr_phy::pdcch::{AggregationLevel, Coreset};
use nr_phy::types::Pci;
use nr_phy::{Numerology, TddPattern};
use nr_rrc::sib1::Duplex;
use nr_rrc::{RachConfigCommon, RrcSetup, Sib1};
use serde::{Deserialize, Serialize};

/// Complete static configuration of a simulated cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellConfig {
    /// Human-readable name ("srsRAN/Open5GS", …).
    pub name: String,
    /// Physical cell identity.
    pub pci: Pci,
    /// 3GPP band label ("n41", …) for logs.
    pub band: &'static str,
    /// Downlink centre frequency in Hz.
    pub center_freq_hz: f64,
    /// Channel bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Numerology (sets SCS and TTI).
    pub numerology: Numerology,
    /// Duplex mode.
    pub duplex: Duplex,
    /// TDD pattern (all-DL for FDD).
    pub tdd: TddPattern,
    /// Carrier width in PRBs (from the 38.101 tables).
    pub carrier_prbs: usize,
    /// Common CORESET (CORESET 0).
    pub coreset: Coreset,
    /// Aggregation level used for UE-specific DCIs.
    pub aggregation_level: AggregationLevel,
    /// PDCCH candidates per level.
    pub candidates_per_level: u8,
    /// PDSCH MCS table.
    pub mcs_table: McsTable,
    /// MIMO layers granted.
    pub layers: usize,
    /// DMRS REs per PRB.
    pub dmrs_per_prb: usize,
    /// xOverhead per PRB.
    pub x_overhead: usize,
    /// Initial BWP id (commercial cells use 1, private cells 0 — §5.1).
    pub initial_bwp_id: u8,
    /// SSB (MIB) period in frames (typically 2 = 20 ms).
    pub ssb_period_frames: u32,
    /// SIB1 period in frames (typically 16 = 160 ms).
    pub sib1_period_frames: u32,
    /// RACH configuration.
    pub rach: RachConfigCommon,
    /// Mean SNR at which UEs operate in this cell (placement baseline).
    pub base_ue_snr_db: f64,
}

impl CellConfig {
    /// The open-source srsRAN/Open5GS testbed: band n41 TDD, 2524.95 MHz,
    /// 30 kHz SCS, 20 MHz.
    pub fn srsran_n41() -> CellConfig {
        CellConfig {
            name: "srsRAN/Open5GS".into(),
            pci: Pci(1),
            band: "n41",
            center_freq_hz: 2_524.95e6,
            bandwidth_hz: 20e6,
            numerology: Numerology::Mu1,
            duplex: Duplex::Tdd,
            tdd: TddPattern::dddddddsuu(),
            carrier_prbs: 51,
            coreset: Coreset {
                prb_start: 0,
                n_prb: 48,
                symbol_start: 0,
                n_symbols: 1,
            },
            aggregation_level: AggregationLevel::L2,
            candidates_per_level: 2,
            mcs_table: McsTable::Qam256,
            layers: 2,
            dmrs_per_prb: 12,
            x_overhead: 0,
            initial_bwp_id: 0,
            ssb_period_frames: 2,
            sib1_period_frames: 16,
            rach: RachConfigCommon::typical(),
            base_ue_snr_db: 24.0,
        }
    }

    /// The Mosolabs/Aether private small cell: CBRS band n48 TDD,
    /// 3561.6 MHz, 30 kHz SCS, 20 MHz.
    pub fn mosolab_n48() -> CellConfig {
        CellConfig {
            name: "Mosolabs/Aether".into(),
            pci: Pci(10),
            band: "n48",
            center_freq_hz: 3_561.6e6,
            ..CellConfig::srsran_n41()
        }
    }

    /// The Amarisoft Callbox: band n78 TDD, 3489.42 MHz, 30 kHz SCS,
    /// 20 MHz, with a bigger CORESET so 64 emulated UEs can be scheduled.
    pub fn amarisoft_n78() -> CellConfig {
        CellConfig {
            name: "Amari Callbox".into(),
            pci: Pci(20),
            band: "n78",
            center_freq_hz: 3_489.42e6,
            base_ue_snr_db: 26.0,
            ..CellConfig::srsran_n41()
        }
    }

    /// T-Mobile commercial cell 1: band n25 FDD, 15 kHz SCS, 10 MHz,
    /// 1989.85 MHz, BWP 1.
    pub fn tmobile_n25() -> CellConfig {
        CellConfig {
            name: "T-Mobile cell 1 (n25)".into(),
            pci: Pci(101),
            band: "n25",
            center_freq_hz: 1_989.85e6,
            bandwidth_hz: 10e6,
            numerology: Numerology::Mu0,
            duplex: Duplex::Fdd,
            tdd: TddPattern::fdd(),
            carrier_prbs: 52,
            initial_bwp_id: 1,
            base_ue_snr_db: 18.0,
            ..CellConfig::srsran_n41()
        }
    }

    /// T-Mobile commercial cell 2: band n71 FDD, 15 kHz SCS, 15 MHz,
    /// 622.85 MHz, BWP 1.
    pub fn tmobile_n71() -> CellConfig {
        CellConfig {
            name: "T-Mobile cell 2 (n71)".into(),
            pci: Pci(102),
            band: "n71",
            center_freq_hz: 622.85e6,
            bandwidth_hz: 15e6,
            numerology: Numerology::Mu0,
            duplex: Duplex::Fdd,
            tdd: TddPattern::fdd(),
            carrier_prbs: 79,
            initial_bwp_id: 1,
            base_ue_snr_db: 16.0,
            ..CellConfig::srsran_n41()
        }
    }

    /// Slot (TTI) duration in seconds.
    pub fn slot_s(&self) -> f64 {
        self.numerology.slot_duration_s()
    }

    /// Front-end sample rate (Hz) for this cell's carrier: the FFT that
    /// fits the carrier PRBs, scaled by the subcarrier spacing (30.72 MHz
    /// for the 20 MHz µ=1 cells).
    pub fn sample_rate_hz(&self) -> f64 {
        let fft = self.numerology.fft_size(self.carrier_prbs);
        self.numerology.sample_rate_hz(fft)
    }

    /// A seeded oscillator model pre-bound to this cell's carrier
    /// frequency and slot duration — the deterministic drift/CFO source
    /// the observation layer skews captures with. Callers chain the
    /// `with_*` builders for the drift profile under test.
    pub fn clock_model(&self, seed: u64) -> nr_radio::ClockModel {
        nr_radio::ClockModel::new(seed, self.center_freq_hz, self.slot_s())
    }

    /// Number of data symbols per slot (after the CORESET and DMRS layout
    /// used by the schedulers: symbols 2..14).
    pub fn data_symbols(&self) -> usize {
        12
    }

    /// Maximum UE-specific DCIs per slot given the CORESET and level.
    pub fn max_dcis_per_slot(&self) -> usize {
        self.coreset.n_cces() / self.aggregation_level.cces()
    }

    /// Build the SIB1 this cell broadcasts.
    pub fn sib1(&self) -> Sib1 {
        Sib1 {
            cell_id: (self.pci.0 as u64) << 8,
            numerology: self.numerology,
            carrier_prbs: self.carrier_prbs as u16,
            duplex: self.duplex,
            tdd: self.tdd.clone(),
            initial_bwp_id: self.initial_bwp_id,
            rach: self.rach,
            si_period_frames: self.sib1_period_frames as u8,
        }
    }

    /// Build the (UE-invariant, §3.1.2) RRC Setup this cell sends as MSG 4.
    pub fn rrc_setup(&self) -> RrcSetup {
        RrcSetup {
            coreset_prb_start: self.coreset.prb_start as u8,
            coreset_n_prb: self.coreset.n_prb as u8,
            coreset_symbols: self.coreset.n_symbols as u8,
            dl_dci_format: nr_phy::dci::DciFormat::Dl1_1,
            aggregation_level: self.aggregation_level,
            candidates_per_level: self.candidates_per_level,
            max_mimo_layers: self.layers as u8,
            mcs_table: self.mcs_table,
            dmrs_per_prb: self.dmrs_per_prb as u8,
            x_overhead: self.x_overhead as u8,
            bwp_id: self.initial_bwp_id,
        }
    }

    /// Scheduler configuration derived from this cell.
    pub fn scheduler_config(&self) -> nr_mac::SchedulerConfig {
        nr_mac::SchedulerConfig {
            carrier_prbs: self.carrier_prbs,
            max_dcis_per_slot: self.max_dcis_per_slot(),
            symbol_start: 2,
            symbol_len: self.data_symbols(),
            mcs_table: self.mcs_table,
            target_bler: 0.1,
            dmrs_per_prb: self.dmrs_per_prb,
            overhead_per_prb: self.x_overhead,
            layers: self.layers,
        }
    }

    /// The MIB this cell broadcasts at `sfn`.
    pub fn mib(&self, sfn: u16) -> nr_rrc::Mib {
        nr_rrc::Mib {
            sfn,
            scs_common: self.numerology,
            coreset0_prb_start: self.coreset.prb_start as u8,
            coreset0_n_prb: self.coreset.n_prb as u8,
            coreset0_symbols: self.coreset.n_symbols as u8,
            ssb_subcarrier_offset: 0,
            dmrs_type_a_position: 2,
            cell_barred: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_methodology() {
        let srs = CellConfig::srsran_n41();
        assert_eq!(srs.numerology, Numerology::Mu1);
        assert_eq!(srs.carrier_prbs, 51);
        assert_eq!(srs.duplex, Duplex::Tdd);
        assert!((srs.center_freq_hz - 2_524.95e6).abs() < 1.0);

        let tm1 = CellConfig::tmobile_n25();
        assert_eq!(tm1.numerology, Numerology::Mu0);
        assert_eq!(tm1.carrier_prbs, 52);
        assert_eq!(tm1.duplex, Duplex::Fdd);
        assert_eq!(tm1.initial_bwp_id, 1);

        let tm2 = CellConfig::tmobile_n71();
        assert_eq!(tm2.carrier_prbs, 79);
        assert!((tm2.center_freq_hz - 622.85e6).abs() < 1.0);
    }

    #[test]
    fn carrier_prbs_agree_with_phy_tables() {
        for cfg in [
            CellConfig::srsran_n41(),
            CellConfig::mosolab_n48(),
            CellConfig::amarisoft_n78(),
            CellConfig::tmobile_n25(),
            CellConfig::tmobile_n71(),
        ] {
            assert_eq!(
                cfg.carrier_prbs,
                cfg.numerology.max_prb_for_bandwidth(cfg.bandwidth_hz),
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn dci_budget_is_positive() {
        for cfg in [CellConfig::srsran_n41(), CellConfig::tmobile_n25()] {
            assert!(cfg.max_dcis_per_slot() >= 2, "{}", cfg.name);
        }
    }

    #[test]
    fn sib1_and_rrc_round_trip_through_codec() {
        let cfg = CellConfig::amarisoft_n78();
        let sib = cfg.sib1();
        assert_eq!(Sib1::decode(&sib.encode()).unwrap(), sib);
        let setup = cfg.rrc_setup();
        assert_eq!(RrcSetup::decode(&setup.encode()).unwrap(), setup);
    }

    #[test]
    fn mib_points_at_coreset0() {
        let cfg = CellConfig::srsran_n41();
        let mib = cfg.mib(77);
        assert_eq!(mib.coreset0(), cfg.coreset);
        assert_eq!(mib.sfn, 77);
    }
}
