//! Multi-cell simulation: N independent gNBs stepped in lock-step, with
//! scripted inter-cell handovers.
//!
//! Each lane is a complete [`Gnb`] — own scheduler, RACH machinery,
//! RNTI space, and ground-truth log — exactly what a passive sniffer
//! fleet watches: co-located but uncoordinated cells. A handover is
//! modelled at the fidelity the sniffer can see: the UE *departs* cell A
//! (its C-RNTI goes quiet and is eventually idle-released) and *arrives*
//! at cell B's PRACH queue, where it re-attaches through the ordinary
//! RACH → RAR → MSG 4 sequence under a fresh C-RNTI. There is no X2/Xn
//! signalling to model — over the air, a handover *is* a departure plus
//! a random access.

use crate::cell::CellConfig;
use crate::gnb::{Gnb, SlotOutput};
use nr_mac::{RoundRobin, Scheduler};

/// A scripted handover: at `at_slot`, UE `ue_id` leaves lane `from` and
/// begins random access on lane `to`.
#[derive(Debug, Clone, Copy)]
pub struct Handover {
    /// Fleet slot index at which the handover fires.
    pub at_slot: u64,
    /// Simulation id of the moving UE.
    pub ue_id: u64,
    /// Source lane index.
    pub from: usize,
    /// Destination lane index.
    pub to: usize,
}

/// A handover that actually fired (the UE was connected on the source
/// lane when its slot came up).
#[derive(Debug, Clone, Copy)]
pub struct HandoverRecord {
    /// The script entry.
    pub handover: Handover,
    /// Slot it executed at (== `handover.at_slot`).
    pub executed_slot: u64,
}

/// N gNBs stepped in lock-step with a handover script.
pub struct MultiCellSim {
    lanes: Vec<Gnb>,
    script: Vec<Handover>,
    executed: Vec<HandoverRecord>,
    slot: u64,
}

impl MultiCellSim {
    /// Build one lane per cell config, each with its own round-robin
    /// scheduler and a lane-distinct RNG seed.
    pub fn new(cells: Vec<CellConfig>, seed: u64) -> MultiCellSim {
        MultiCellSim::with_scheduler(cells, seed, || Box::new(RoundRobin::new()))
    }

    /// Build with a custom scheduler per lane.
    pub fn with_scheduler(
        cells: Vec<CellConfig>,
        seed: u64,
        mut mk: impl FnMut() -> Box<dyn Scheduler + Send>,
    ) -> MultiCellSim {
        let lanes = cells
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| Gnb::new(cfg, mk(), seed.wrapping_mul(0x9E37).wrapping_add(i as u64)))
            .collect();
        MultiCellSim {
            lanes,
            script: Vec::new(),
            executed: Vec::new(),
            slot: 0,
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the fleet has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// A lane's gNB.
    pub fn lane(&self, i: usize) -> &Gnb {
        &self.lanes[i]
    }

    /// A lane's gNB, mutably (attach UEs, arm hostility, reconfigure).
    pub fn lane_mut(&mut self, i: usize) -> &mut Gnb {
        &mut self.lanes[i]
    }

    /// Current fleet slot index (number of completed [`step`] calls).
    ///
    /// [`step`]: MultiCellSim::step
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Script a handover. Entries may be added in any order; each fires
    /// when its slot comes up (or is skipped if the UE is not connected
    /// on the source lane by then).
    pub fn schedule_handover(&mut self, at_slot: u64, ue_id: u64, from: usize, to: usize) {
        self.script.push(Handover {
            at_slot,
            ue_id,
            from,
            to,
        });
    }

    /// Handovers that actually fired so far.
    pub fn executed_handovers(&self) -> &[HandoverRecord] {
        &self.executed
    }

    /// Advance every lane one slot, firing any due handovers first.
    /// Returns one [`SlotOutput`] per lane, in lane order.
    pub fn step(&mut self) -> Vec<SlotOutput> {
        let now = self.slot;
        let mut due: Vec<Handover> = Vec::new();
        self.script.retain(|h| {
            if h.at_slot <= now {
                due.push(*h);
                false
            } else {
                true
            }
        });
        for h in due {
            if h.from >= self.lanes.len() || h.to >= self.lanes.len() || h.from == h.to {
                continue;
            }
            if let Some(ue) = self.lanes[h.from].ue_departs(h.ue_id) {
                self.lanes[h.to].ue_arrives(ue);
                self.executed.push(HandoverRecord {
                    handover: h,
                    executed_slot: now,
                });
            } else {
                // Not connected yet (still mid-RACH or not arrived):
                // requeue one slot later rather than dropping the script
                // entry, so a handover scripted near attach still fires.
                self.script.push(Handover {
                    at_slot: now + 1,
                    ..h
                });
            }
        }
        self.slot += 1;
        self.lanes.iter_mut().map(|g| g.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::channel::ChannelProfile;
    use ue_sim::traffic::{TrafficKind, TrafficSource};
    use ue_sim::{MobilityScenario, SimUe};

    fn ue(id: u64) -> SimUe {
        SimUe::new(
            id,
            ChannelProfile::Awgn,
            MobilityScenario::Static,
            TrafficSource::new(
                TrafficKind::FileDownload {
                    total_bytes: usize::MAX / 2,
                },
                id,
            ),
            0.0,
            60.0,
            id * 7,
        )
    }

    #[test]
    fn lanes_step_independently() {
        let mut sim =
            MultiCellSim::new(vec![CellConfig::srsran_n41(), CellConfig::mosolab_n48()], 1);
        sim.lane_mut(0).ue_arrives(ue(1));
        for _ in 0..2000 {
            let outs = sim.step();
            assert_eq!(outs.len(), 2);
        }
        assert_eq!(sim.lane(0).connected_rntis().len(), 1);
        assert!(sim.lane(1).connected_rntis().is_empty());
    }

    #[test]
    fn scripted_handover_moves_the_ue_between_lanes() {
        let mut sim =
            MultiCellSim::new(vec![CellConfig::srsran_n41(), CellConfig::mosolab_n48()], 2);
        sim.lane_mut(0).ue_arrives(ue(42));
        sim.schedule_handover(3000, 42, 0, 1);
        for _ in 0..8000 {
            sim.step();
        }
        assert!(sim.lane(0).connected_rntis().is_empty(), "left cell A");
        assert_eq!(sim.lane(1).connected_rntis().len(), 1, "attached on B");
        assert_eq!(sim.executed_handovers().len(), 1);
        assert!(sim.executed_handovers()[0].executed_slot >= 3000);
    }

    #[test]
    fn handover_before_attach_is_retried_until_connected() {
        let mut sim =
            MultiCellSim::new(vec![CellConfig::srsran_n41(), CellConfig::mosolab_n48()], 3);
        sim.lane_mut(0).ue_arrives(ue(7));
        // Scripted at slot 1: the UE is still mid-RACH then.
        sim.schedule_handover(1, 7, 0, 1);
        for _ in 0..8000 {
            sim.step();
        }
        assert_eq!(sim.executed_handovers().len(), 1, "fired once attached");
        assert_eq!(sim.lane(1).connected_rntis().len(), 1);
    }
}
