//! Hostile-cell emission profile — the attack vectors the untrusted-air
//! hardening must survive.
//!
//! When armed ([`crate::Gnb::arm_hostile`]), the simulator injects
//! adversarial transmissions *alongside* its legitimate traffic, on the
//! same CORESET, with correct CRC attachment and scrambling — exactly what
//! a sniffer would capture if a hostile (or badly broken) cell shared the
//! air. None of these emissions enter the ground-truth log: by
//! construction, anything the sniffer admits or accounts from them is an
//! error the adversarial test suite can measure.
//!
//! The vectors, each on its own period (primes, so they interleave):
//!
//! * **ghost MSG 4s** — well-formed TC-scrambled DCIs at random C-range
//!   RNTIs with a valid RRC Setup payload. The CRC-XOR recovery trick
//!   recovers the RNTI deterministically, so a pre-hardening tracker
//!   admits a phantom UE per emission; stage-2 admission control must
//!   leave them all in probation (they never corroborate).
//! * **a persistent ghost** — the same phantom RNTI re-emitted on a long
//!   period, to drive probation-window lapse, quarantine, and counted
//!   reappearance.
//! * **reserved-bit violations** — otherwise-valid DCIs with a reserved
//!   bit set (stage-1 `ReservedBitsSet`).
//! * **malformed fields** — RIV outside the BWP, unconfigured TDRA rows,
//!   reserved-MCS initial transmissions (stage-1 rejects).
//! * **broken RRC payloads** — truncated and oversized SIB1 / RRC Setup
//!   encodings behind well-formed DCIs (typed parse rejects, no panic).
//! * **contradictory SIB1** — a valid but *different* SIB1 encoding, one
//!   sighting at a time, which the two-consecutive-sightings reload rule
//!   must refuse to accept.

/// Periods (in slots) of each hostile emission. `0` disables a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostileConfig {
    /// Fresh-random-RNTI ghost MSG 4 period.
    pub ghost_dci_period: u64,
    /// Persistent-ghost re-emission period. Set longer than the sniffer's
    /// admission window to exercise quarantine + reappearance counting.
    pub persistent_ghost_period: u64,
    /// The persistent ghost's C-RNTI.
    pub persistent_ghost_rnti: u16,
    /// Reserved-bit-violation DCI period.
    pub reserved_bits_period: u64,
    /// Malformed-field DCI period (rotates RIV / TDRA / MCS violations).
    pub malformed_fields_period: u64,
    /// Truncated/oversized RRC payload period (rotates SIB1 / RRC Setup).
    pub bad_rrc_period: u64,
    /// Contradictory-SIB1 period.
    pub sib1_spoof_period: u64,
    /// Seed of the hostile RNG (independent of the cell's own RNG, so
    /// arming hostility never perturbs the legitimate emission stream).
    pub seed: u64,
}

impl Default for HostileConfig {
    fn default() -> Self {
        HostileConfig {
            ghost_dci_period: 7,
            persistent_ghost_period: 251,
            persistent_ghost_rnti: 0x7F2A,
            reserved_bits_period: 11,
            malformed_fields_period: 13,
            bad_rrc_period: 17,
            sib1_spoof_period: 19,
            seed: 0xADBEEF,
        }
    }
}

impl HostileConfig {
    /// A profile with every vector disabled (useful as a baseline).
    pub fn quiet() -> Self {
        HostileConfig {
            ghost_dci_period: 0,
            persistent_ghost_period: 0,
            reserved_bits_period: 0,
            malformed_fields_period: 0,
            bad_rrc_period: 0,
            sib1_spoof_period: 0,
            ..HostileConfig::default()
        }
    }

    /// A full-vector profile derived from `seed`: same attack mix as the
    /// default, but the hostile RNG and emission phases vary with the
    /// seed so composed chaos runs don't all see an identical hostile
    /// stream. Deterministic per seed (the chaos-reproducibility rule).
    pub fn seeded(seed: u64) -> Self {
        // Small coprime period perturbations keep every vector active
        // while shifting which slots the emissions land on.
        let wobble = |base: u64, span: u64, salt: u64| {
            base + (seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt) % span)
        };
        HostileConfig {
            ghost_dci_period: wobble(5, 5, 1),
            persistent_ghost_period: wobble(241, 23, 2),
            reserved_bits_period: wobble(9, 5, 3),
            malformed_fields_period: wobble(11, 5, 4),
            bad_rrc_period: wobble(15, 5, 5),
            sib1_spoof_period: wobble(17, 5, 6),
            seed: seed ^ 0xADBEEF,
            ..HostileConfig::default()
        }
    }

    /// Is an emission with period `period` due this slot? Phased to
    /// `period - 1` so vectors avoid the frame-boundary broadcast slots.
    pub fn due(period: u64, slot: u64) -> bool {
        period > 0 && slot % period == period - 1
    }
}
